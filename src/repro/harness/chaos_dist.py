"""The distributed half of the chaos campaign: attack ``repro.dist``.

``python -m repro.harness chaos --distributed`` points the seeded
adversary at the coordinator/worker sharding protocol:

1. **worker SIGKILL mid-cell** — a real ``repro.serve`` daemon (started
   with ``--dist-journal``) shards a sweep; a real worker subprocess is
   SIGKILLed while ``/dist/status`` shows it holding a lease.  The
   lease must expire, the cell re-queue, and a replacement worker
   finish the sweep byte-identical to the serial oracle — with exactly
   one terminal state per cell in the cell journal and
   ``dist_lease_expirations_total`` visible on ``/metrics``.
2. **seeded faulty fleet** — in-process workers pull through a seeded
   :class:`~repro.dist.faultnet.FaultyTransport` (refusals, torn
   bodies, duplicated deliveries, lost responses).  Whatever the
   channel does, reassembly must be byte-identical and every cell
   terminal exactly once.
3. **partition while holding a lease** — a one-way partition grants a
   lease whose response never reaches the worker (state mutated, owner
   oblivious), then a total partition silences a live lease holder.
   Both leases must expire and re-queue; the healed holder's late push
   must be fenced off as stale, its heartbeat refused.
4. **duplicate completion push + torn result body** — a verbatim
   replay of an accepted completion must be discarded as a duplicate,
   and a result string torn in flight must fail digest verification
   with ``retry`` (so the worker re-pushes the true bytes, which are
   then accepted).

Exit codes match :mod:`repro.harness.chaos`: 0 pass, 1 verification
failure.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from typing import Any, Dict, List, Optional

from repro.core.config import GPUConfig, config_hash
from repro.dist.coordinator import DistCoordinator
from repro.dist.faultnet import FaultSpec, FaultyTransport
from repro.dist.journal import CellJournal
from repro.dist.protocol import cell_to_wire, result_digest
from repro.dist.transport import HttpTransport, LocalTransport
from repro.dist.worker import DistWorker
from repro.parallel.cells import Cell, execute_cell
from repro.prof.registry import MetricsRegistry

#: Wall-clock budgets (generous; the campaign fails loudly, not flakily).
STARTUP_TIMEOUT = 30.0
SWEEP_TIMEOUT = 180.0

#: Lease TTL for the subprocess scenario — long enough for heartbeats
#: from a healthy worker (interval ttl/3), short enough that a SIGKILLed
#: holder is presumed dead quickly.
KILL_LEASE_TTL = 2.0


def _step(verbose: bool, name: str, detail: str = "") -> None:
    suffix = f" — {detail}" if detail else ""
    print(f"chaos[dist]: {name}{suffix}")
    if verbose:
        sys.stdout.flush()


def _tiny(preset: str, **overrides) -> GPUConfig:
    return GPUConfig.preset(
        preset, num_cores=1, warps_per_core=8, warp_width=8, **overrides
    )


def _matrix(quick: bool, workloads: Optional[List[str]] = None) -> List[Cell]:
    """The campaign sweep: one deliberately slow cell, then tiny ones.

    The first cell runs for north of a second on purpose — it is the
    SIGKILL window.  Tiny cells finish in ~0.1 s, far too fast to
    reliably murder a worker mid-cell.
    """

    def pick(index: int, default: str) -> str:
        if workloads is None:
            return default
        return workloads[index % len(workloads)]

    slow = GPUConfig.preset(
        "naive", num_cores=4, warps_per_core=48, warp_width=32
    )
    cells = [
        Cell(label="slow", workload=pick(0, "bfs"), config=slow,
             miss_scale=1.0),
        Cell(label="aug", workload=pick(1, "kmeans"),
             config=_tiny("augmented"), miss_scale=1.0),
        Cell(label="base", workload=pick(2, "bfs"), config=_tiny("no_tlb"),
             miss_scale=1.0),
    ]
    if not quick:
        cells += [
            Cell(label="naive", workload=pick(3, "kmeans"),
                 config=_tiny("naive"), miss_scale=1.0),
            Cell(label="ideal", workload=pick(4, "bfs"),
                 config=_tiny("ideal"), miss_scale=1.0),
        ]
    return cells


def _on_engine(cell: Cell, engine: Optional[str]) -> Cell:
    if engine is None or cell.config.engine == engine:
        return cell
    from dataclasses import replace

    return replace(cell, config=cell.config.with_(engine=engine))


def _oracle(cells: List[Cell]) -> List[str]:
    """The serial ground truth every reassembly is compared against."""
    return [execute_cell(cell).canonical_json() for cell in cells]


def _terminal_once(journal_path: str, keys: List[str]) -> Optional[str]:
    """None if every key is terminal exactly once, else a complaint."""
    counts = CellJournal.terminal_counts(journal_path)
    bad = {
        key: counts.get(key, 0) for key in keys if counts.get(key, 0) != 1
    }
    if bad:
        return f"terminal counts off (want exactly 1 each): {bad}"
    return None


def _drive_to_terminal(
    coordinator: DistCoordinator,
    worker: DistWorker,
    deadline_s: float = SWEEP_TIMEOUT,
) -> bool:
    """Step ``worker`` until every cell is terminal (False = timed out)."""
    deadline = time.monotonic() + deadline_s
    while not coordinator.all_terminal():
        if time.monotonic() > deadline:
            return False
        coordinator.maintain()
        worker.step()
    return True


class _DistDaemon:
    """A ``repro.serve`` subprocess with the ``/dist/*`` routes enabled."""

    def __init__(self, tmp: str, tag: str):
        self.journal = os.path.join(tmp, "serve-journal.jsonl")
        self.dist_journal = os.path.join(tmp, "cells.jsonl")
        self.port_file = os.path.join(tmp, f"port-{tag}")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--journal", self.journal,
                "--dist-journal", self.dist_journal,
                "--dist-lease-ttl", str(KILL_LEASE_TTL),
                "--dist-max-attempts", "5",
                "--port", "0",
                "--port-file", self.port_file,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + STARTUP_TIMEOUT
        while not os.path.exists(self.port_file):
            if self.process.poll() is not None:
                out = (self.process.stdout.read() or b"").decode(
                    "utf-8", errors="replace"
                )
                raise RuntimeError(
                    f"serve daemon died during startup "
                    f"(exit {self.process.returncode}): {out}"
                )
            if time.monotonic() > deadline:
                self.process.kill()
                raise RuntimeError("serve daemon never wrote its port file")
            time.sleep(0.02)
        with open(self.port_file, "r", encoding="utf-8") as handle:
            self.base_url = f"http://{handle.read().strip()}"
        self.transport = HttpTransport(self.base_url)
        deadline = time.monotonic() + STARTUP_TIMEOUT
        while True:
            try:
                status, _ = self.transport.request("GET", "/dist/status")
                if status == 200:
                    break
            except ConnectionError:
                pass
            if time.monotonic() > deadline:
                self.kill()
                raise RuntimeError("serve daemon never became ready")
            time.sleep(0.05)

    def metrics_value(self, name: str) -> float:
        """Sum of ``name``'s series scraped from the daemon's /metrics."""
        with urllib.request.urlopen(
            self.base_url + "/metrics", timeout=10
        ) as response:
            text = response.read().decode("utf-8")
        total = 0.0
        for line in text.splitlines():
            match = re.match(
                rf"^{re.escape(name)}(?:\{{[^}}]*\}})?\s+([0-9.eE+-]+)$",
                line,
            )
            if match:
                total += float(match.group(1))
        return total

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
        self.process.wait(timeout=10)
        if self.process.stdout is not None:
            self.process.stdout.close()


class _WorkerProc:
    """A ``python -m repro.harness worker`` subprocess, SIGKILL-able."""

    def __init__(self, coordinator_url: str, worker_id: str):
        self.worker_id = worker_id
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness", "worker",
                "--coordinator", coordinator_url,
                "--id", worker_id,
                "--poll", "0.05",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )

    def kill(self) -> None:
        """SIGKILL — no cleanup, no goodbye push; the crash under test."""
        if self.process.poll() is None:
            self.process.kill()
        self.process.wait(timeout=10)
        if self.process.stdout is not None:
            self.process.stdout.close()


def _scenario_worker_sigkill(
    failures: List[str],
    verbose: bool,
    cells: List[Cell],
    oracle: List[str],
) -> None:
    """Scenario 1: SIGKILL a real worker holding a real lease."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-dist-") as tmp:
        daemon = _DistDaemon(tmp, tag="a")
        victim = replacement = None
        try:
            status, body = daemon.transport.request(
                "POST",
                "/dist/shard",
                {"cells": [cell_to_wire(cell) for cell in cells]},
            )
            if status != 200:
                failures.append(f"sigkill: shard returned {status}: {body}")
                return
            keys = body["keys"]
            _step(verbose, "sharded", f"{len(keys)} cells via /dist/shard")

            # One worker alone, so the lease we see is necessarily its.
            victim = _WorkerProc(daemon.base_url, "w-victim")
            held: Optional[Dict[str, Any]] = None
            deadline = time.monotonic() + STARTUP_TIMEOUT
            while time.monotonic() < deadline:
                _, view = daemon.transport.request("GET", "/dist/status")
                leases = [
                    lease
                    for lease in view.get("leases", [])
                    if lease.get("owner") == "w-victim"
                ]
                if leases:
                    held = leases[0]
                    break
                time.sleep(0.02)
            if held is None:
                failures.append(
                    "sigkill: the victim worker never appeared as a "
                    "lease owner in /dist/status"
                )
                return
            victim.kill()
            _step(
                verbose,
                "worker SIGKILLed",
                f"held {held['key'][:12]}… attempt {held['attempt']}",
            )

            # A replacement (plus lease expiry) must finish the sweep.
            replacement = _WorkerProc(daemon.base_url, "w-replacement")
            deadline = time.monotonic() + SWEEP_TIMEOUT
            assembled: Optional[Dict[str, Any]] = None
            while time.monotonic() < deadline:
                status, assembled = daemon.transport.request(
                    "POST", "/dist/assemble", {"keys": keys}
                )
                if status == 200 and assembled.get("complete"):
                    break
                time.sleep(0.1)
            else:
                failures.append(
                    "sigkill: the sweep never completed after the kill"
                )
                return

            rows = assembled["cells"]
            not_done = [r["key"] for r in rows if r["state"] != "done"]
            if not_done:
                failures.append(
                    f"sigkill: cells ended non-done after recovery: "
                    f"{not_done}"
                )
            reassembled = [row["result"] for row in rows]
            identical = reassembled == oracle
            if not identical:
                failures.append(
                    "sigkill: reassembled results are not byte-identical "
                    "to the serial oracle"
                )
            complaint = _terminal_once(daemon.dist_journal, keys)
            if complaint:
                failures.append(f"sigkill: {complaint}")
            expirations = daemon.metrics_value(
                "dist_lease_expirations_total"
            )
            if expirations < 1:
                failures.append(
                    "sigkill: dist_lease_expirations_total never "
                    "incremented — the dead worker's lease never expired"
                )
            _step(
                verbose,
                "worker sigkill",
                f"expirations={expirations:.0f}, "
                + ("identical" if identical else "MISMATCH"),
            )
        finally:
            for proc in (victim, replacement):
                if proc is not None:
                    proc.kill()
            daemon.kill()


def _scenario_faulty_fleet(
    failures: List[str],
    verbose: bool,
    seed: int,
    cells: List[Cell],
    oracle: List[str],
) -> None:
    """Scenario 2: an in-process fleet behind seeded channel faults."""
    spec = FaultSpec(
        refuse=0.10, tear=0.08, duplicate=0.15, drop_response=0.15
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-dist-") as tmp:
        registry = MetricsRegistry()
        coordinator = DistCoordinator(
            os.path.join(tmp, "cells.jsonl"),
            registry=registry,
            lease_ttl=3.0,
            max_attempts=8,
            backoff_seed=seed,
        )
        try:
            keys = coordinator.submit_cells(cells)
            transports = [
                FaultyTransport(
                    LocalTransport(coordinator), spec, seed=seed * 101 + i
                )
                for i in range(2)
            ]
            workers = [
                DistWorker(
                    transport,
                    worker_id=f"faulty-{i}",
                    poll_s=0.02,
                    push_retries=24,
                    backoff_seed=seed + i,
                )
                for i, transport in enumerate(transports)
            ]
            threads = [
                threading.Thread(
                    target=worker.run,
                    kwargs={"idle_exit_s": 1.0},
                    daemon=True,
                )
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + SWEEP_TIMEOUT
            while any(t.is_alive() for t in threads):
                if time.monotonic() > deadline:
                    failures.append("faulty fleet: workers never drained")
                    for worker in workers:
                        worker.stop.set()
                    break
                coordinator.maintain()
                time.sleep(0.05)
            for thread in threads:
                thread.join(timeout=10)

            # Backoff'd re-queues can outlive the fleet's idle-exit; a
            # clean sweeper drains the stragglers (still exactly-once).
            if not coordinator.all_terminal():
                sweeper = DistWorker(
                    LocalTransport(coordinator),
                    worker_id="sweeper",
                    poll_s=0.02,
                )
                if not _drive_to_terminal(coordinator, sweeper, 60.0):
                    failures.append(
                        "faulty fleet: cells still non-terminal after "
                        "the clean sweeper"
                    )
                    return

            counts = coordinator.counts()
            if counts.get("failed"):
                failures.append(
                    f"faulty fleet: {counts['failed']} cell(s) failed "
                    "structurally — channel faults must never poison a "
                    "cell"
                )
            strings = coordinator.result_strings(keys)
            identical = strings == oracle
            if not identical:
                failures.append(
                    "faulty fleet: reassembled results are not "
                    "byte-identical to the serial oracle"
                )
            complaint = _terminal_once(coordinator.journal.path, keys)
            if complaint:
                failures.append(f"faulty fleet: {complaint}")
            injected: Dict[str, int] = {}
            for transport in transports:
                for name, count in transport.injected.items():
                    injected[name] = injected.get(name, 0) + count
            if sum(injected.values()) < 3:
                failures.append(
                    f"faulty fleet: almost no faults injected "
                    f"({injected}) — the campaign proved nothing"
                )
            _step(
                verbose,
                "faulty fleet",
                f"injected={injected}, "
                + ("identical" if identical else "MISMATCH"),
            )
        finally:
            coordinator.close()


def _scenario_partition(
    failures: List[str],
    verbose: bool,
    seed: int,
    engine: Optional[str],
) -> None:
    """Scenario 3: partitions around a live lease holder."""
    ttl = 0.3
    cells = [
        _on_engine(
            Cell(label="p1", workload="bfs", config=_tiny("naive"),
                 miss_scale=1.0),
            engine,
        ),
        _on_engine(
            Cell(label="p2", workload="bfs", config=_tiny("augmented"),
                 miss_scale=1.0),
            engine,
        ),
    ]
    oracle = _oracle(cells)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-dist-") as tmp:
        registry = MetricsRegistry()
        coordinator = DistCoordinator(
            os.path.join(tmp, "cells.jsonl"),
            registry=registry,
            lease_ttl=ttl,
            max_attempts=6,
            backoff_seed=seed,
        )
        try:
            keys = coordinator.submit_cells(cells)
            channel = FaultyTransport(
                LocalTransport(coordinator), FaultSpec(), seed=seed
            )

            # One-way partition: the lease request LANDS (coordinator
            # state mutates) but the response is lost — the owner never
            # learns it holds anything.  The worst case for fencing.
            channel.partition(one_way=True)
            try:
                channel.request("POST", "/dist/lease", {"worker": "wA"})
                failures.append(
                    "partition: a one-way partition returned a response"
                )
            except ConnectionError:
                pass
            channel.heal()
            orphaned = [
                lease
                for lease in coordinator.status()["leases"]
                if lease["owner"] == "wA"
            ]
            if not orphaned:
                failures.append(
                    "partition: the one-way-partitioned lease request "
                    "did not land coordinator-side"
                )
            _step(
                verbose,
                "one-way partition",
                f"orphaned lease: {bool(orphaned)}",
            )
            # The oblivious owner never heartbeats; the lease expires.
            time.sleep(ttl * 1.5)
            coordinator.maintain()

            # Now a knowing holder: wA leases legitimately, computes its
            # result — then a TOTAL partition silences it past the TTL.
            status, body = channel.request(
                "POST", "/dist/lease", {"worker": "wA"}
            )
            lease = body.get("lease")
            if lease is None:
                failures.append(
                    "partition: wA could not re-lease after the one-way "
                    "orphan expired"
                )
                return
            held_key, held_attempt = lease["key"], lease["attempt"]
            from repro.dist.protocol import cell_from_wire

            held_cell = cell_from_wire(lease["cell"])
            late_result = execute_cell(held_cell).canonical_json()
            channel.partition(one_way=False)
            try:
                channel.request(
                    "POST",
                    "/dist/heartbeat",
                    {"worker": "wA", "key": held_key,
                     "attempt": held_attempt},
                )
                failures.append(
                    "partition: a total partition let a heartbeat through"
                )
            except ConnectionError:
                pass
            time.sleep(ttl * 1.5)
            coordinator.maintain()
            expirations = registry.counter(
                "dist_lease_expirations_total"
            ).value()
            if expirations < 2:
                failures.append(
                    f"partition: {expirations:.0f} lease expiration(s) "
                    "recorded (want 2: the orphan and the silenced holder)"
                )

            # wB finishes the whole sweep while wA is partitioned away.
            wb = DistWorker(
                LocalTransport(coordinator), worker_id="wB", poll_s=0.02
            )
            if not _drive_to_terminal(coordinator, wb, 60.0):
                failures.append("partition: wB never drained the sweep")
                return

            # The partition heals; wA pushes its stale result and
            # heartbeats.  Both must bounce off the fence.
            channel.heal()
            status, body = channel.request(
                "POST",
                "/dist/complete",
                {
                    "worker": "wA",
                    "key": held_key,
                    "attempt": held_attempt,
                    "config_hash": config_hash(held_cell.config),
                    "digest": result_digest(late_result),
                    "result": late_result,
                },
            )
            if body.get("accepted") or body.get("retry"):
                failures.append(
                    f"partition: the healed holder's stale push was not "
                    f"discarded ({body})"
                )
            stale = registry.counter("dist_stale_results_total")
            if stale.value(reason="duplicate") + stale.value(
                reason="fenced"
            ) < 1:
                failures.append(
                    "partition: dist_stale_results_total never counted "
                    "the stale push"
                )
            status, body = channel.request(
                "POST",
                "/dist/heartbeat",
                {"worker": "wA", "key": held_key, "attempt": held_attempt},
            )
            if body.get("ok"):
                failures.append(
                    "partition: the healed holder's heartbeat was renewed "
                    "despite the fence"
                )

            strings = coordinator.result_strings(keys)
            identical = strings == oracle
            if not identical:
                failures.append(
                    "partition: reassembled results are not byte-identical "
                    "to the serial oracle"
                )
            complaint = _terminal_once(coordinator.journal.path, keys)
            if complaint:
                failures.append(f"partition: {complaint}")
            _step(
                verbose,
                "partition",
                f"expirations={expirations:.0f}, stale push "
                f"{body.get('ok') and 'LEAKED' or 'fenced'}, "
                + ("identical" if identical else "MISMATCH"),
            )
        finally:
            coordinator.close()


def _scenario_duplicate_and_torn(
    failures: List[str],
    verbose: bool,
    seed: int,
    engine: Optional[str],
) -> None:
    """Scenario 4: replayed completion pushes and torn result bodies."""
    cells = [
        _on_engine(
            Cell(label="d1", workload="kmeans", config=_tiny("naive"),
                 miss_scale=1.0),
            engine,
        ),
        _on_engine(
            Cell(label="d2", workload="kmeans", config=_tiny("augmented"),
                 miss_scale=1.0),
            engine,
        ),
    ]
    oracle = _oracle(cells)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-dist-") as tmp:
        registry = MetricsRegistry()
        coordinator = DistCoordinator(
            os.path.join(tmp, "cells.jsonl"),
            registry=registry,
            lease_ttl=30.0,
            max_attempts=3,
        )
        try:
            keys = coordinator.submit_cells(cells)
            channel = LocalTransport(coordinator)

            # -- duplicate completion push ----------------------------
            _, body = channel.request(
                "POST", "/dist/lease", {"worker": "w1"}
            )
            lease = body["lease"]
            from repro.dist.protocol import cell_from_wire

            cell = cell_from_wire(lease["cell"])
            result_json = execute_cell(cell).canonical_json()
            push = {
                "worker": "w1",
                "key": lease["key"],
                "attempt": lease["attempt"],
                "config_hash": config_hash(cell.config),
                "digest": result_digest(result_json),
                "result": result_json,
            }
            _, first = channel.request("POST", "/dist/complete", push)
            _, replay = channel.request("POST", "/dist/complete", push)
            if not first.get("accepted"):
                failures.append(
                    f"duplicate: the first push was not accepted ({first})"
                )
            if replay.get("accepted") or replay.get("retry"):
                failures.append(
                    f"duplicate: the replayed push was not discarded "
                    f"({replay})"
                )
            if replay.get("reason") != "duplicate":
                failures.append(
                    f"duplicate: replay reason {replay.get('reason')!r} "
                    "(want 'duplicate')"
                )
            if registry.counter("dist_stale_results_total").value(
                reason="duplicate"
            ) < 1:
                failures.append(
                    "duplicate: dist_stale_results_total{duplicate} "
                    "never incremented"
                )
            _step(verbose, "duplicate push", f"replay → {replay}")

            # -- torn result body -------------------------------------
            _, body = channel.request(
                "POST", "/dist/lease", {"worker": "w2"}
            )
            lease = body["lease"]
            cell = cell_from_wire(lease["cell"])
            result_json = execute_cell(cell).canonical_json()
            digest = result_digest(result_json)
            torn = {
                "worker": "w2",
                "key": lease["key"],
                "attempt": lease["attempt"],
                "config_hash": config_hash(cell.config),
                "digest": digest,
                # The result string tore in flight; the digest is over
                # the true bytes, so verification must catch it.
                "result": result_json[: len(result_json) // 2],
            }
            status, verdict = channel.request(
                "POST", "/dist/complete", torn
            )
            if status != 400 or verdict.get("accepted"):
                failures.append(
                    f"torn body: the torn push was accepted "
                    f"({status}, {verdict})"
                )
            if not verdict.get("retry") or verdict.get("reason") != "digest":
                failures.append(
                    f"torn body: expected a retryable digest rejection, "
                    f"got {verdict}"
                )
            if registry.counter("dist_rejected_results_total").value(
                reason="digest"
            ) < 1:
                failures.append(
                    "torn body: dist_rejected_results_total{digest} "
                    "never incremented"
                )
            # A whole-body tear (invalid JSON on the wire) must be a 400
            # too, never a half-parsed push.
            faulty = FaultyTransport(
                LocalTransport(coordinator),
                FaultSpec(tear=1.0),
                seed=seed,
            )
            status, body2 = faulty.request(
                "POST",
                "/dist/complete",
                dict(torn, result=result_json),
            )
            if status != 400:
                failures.append(
                    f"torn body: a torn wire body returned {status} "
                    "(want 400)"
                )
            # The worker still holds the true bytes: the clean re-push
            # must be accepted.
            _, healed = channel.request(
                "POST", "/dist/complete", dict(torn, result=result_json)
            )
            if not healed.get("accepted"):
                failures.append(
                    f"torn body: the clean re-push was rejected ({healed})"
                )
            _step(verbose, "torn body", f"verdict={verdict}, re-push ok")

            strings = coordinator.result_strings(keys)
            identical = strings == oracle
            if not identical:
                failures.append(
                    "duplicate/torn: results are not byte-identical to "
                    "the serial oracle"
                )
            complaint = _terminal_once(coordinator.journal.path, keys)
            if complaint:
                failures.append(f"duplicate/torn: {complaint}")
        finally:
            coordinator.close()


def run_dist_campaign(
    *,
    seed: int = 0,
    quick: bool = False,
    workloads: Optional[List[str]] = None,
    verbose: bool = False,
    engine: Optional[str] = None,
) -> int:
    """Execute the distributed campaign; returns the process exit code."""
    failures: List[str] = []
    cells = [_on_engine(c, engine) for c in _matrix(quick, workloads)]

    _step(verbose, "oracle", f"{len(cells)} cells, serial, in-process")
    started = time.monotonic()
    oracle = _oracle(cells)
    _step(verbose, "oracle done", f"{time.monotonic() - started:.1f}s")

    _scenario_worker_sigkill(failures, verbose, cells, oracle)
    _scenario_faulty_fleet(failures, verbose, seed, cells, oracle)
    _scenario_partition(failures, verbose, seed, engine)
    _scenario_duplicate_and_torn(failures, verbose, seed, engine)

    if failures:
        print()
        for failure in failures:
            print(f"chaos[dist] FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"chaos[dist]: all checks passed (seed {seed}, {len(cells)} cells)"
    )
    return 0
