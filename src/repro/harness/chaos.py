"""``python -m repro.harness chaos`` — the recovery-proof campaign.

A seeded chaos campaign that attacks the sweep machinery the way real
infrastructure does — SIGKILLed workers, files truncated mid-write,
faults injected mid-sweep — and verifies the recovery guarantees hold:

1. **kill/resume** — a supervised sweep whose chaos hook SIGKILLs the
   first worker seen with an on-disk snapshot (guaranteeing the resume
   path runs) plus further seeded kills; the recovered results must be
   byte-identical to a clean serial run, with no degradation warnings.
2. **torn checkpoint** — a checkpoint with a truncated trailing line
   must load with a warning (never raise), keep every complete entry,
   and resume to byte-identical results.
3. **truncated snapshot** — a mid-run snapshot cut off halfway must be
   rejected cleanly and the cell recomputed from scratch,
   byte-identical.
4. **mid-sweep faults** — a poisoned cell (every page walk fails) must
   fail with its structured :class:`~repro.faults.errors.PTWError`
   while every healthy cell completes byte-identically.

``--server`` runs the companion campaign against the ``repro.serve``
daemon instead (see :mod:`repro.harness.chaos_server`): SIGKILL the
daemon mid-sweep, tear the job journal's final line, expire a lease
under a wedged executor, and flood admission past its high-water mark
— asserting byte-identical recovery, exactly-one-terminal-state per
job, and correct ``429``/``503`` shedding.  ``--distributed`` runs the
third campaign, against the coordinator/worker sharding protocol (see
:mod:`repro.harness.chaos_dist`): SIGKILL a worker holding a lease,
partition a lease holder (one-way and total), replay a completion
push, and tear a result body mid-flight — asserting byte-identical
reassembly, exactly-once terminal states per cell, and that every
stale or corrupt push bounces off the fencing/digest gates.
``--workloads`` narrows the campaign to a workload subset (unknown
names exit ``2``).

Exit codes: ``0`` — every check passed; ``1`` — a verification failed
(result mismatch, zero kills landed, unexpected warnings); ``2`` —
usage error.
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import sys
import tempfile
import time
import warnings
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.core.config import GPUConfig
from repro.engines import available_engines
from repro.faults.config import FaultConfig
from repro.faults.errors import PTWError, SimulationError
from repro.harness.checkpoint import SweepCheckpoint
from repro.parallel.cells import Cell
from repro.parallel.pool import SweepExecutor

#: Mid-cell snapshot period for chaos runs: small, so even the tiny
#: campaign cells leave snapshots for the killer to target.
SNAPSHOT_EVERY = 1_000

#: Restarts per cell during the kill campaign — generous, so seeded
#: extra kills cannot exhaust a budget and mask the identity check.
RESTART_BUDGET = 5


def _tiny(preset: str, **overrides) -> GPUConfig:
    return GPUConfig.preset(
        preset, num_cores=1, warps_per_core=8, warp_width=8, **overrides
    )


def _matrix(quick: bool, workloads: Optional[List[str]] = None) -> List[Cell]:
    def pick(index: int, default: str) -> str:
        if workloads is None:
            return default
        return workloads[index % len(workloads)]

    cells = [
        Cell(label="naive", workload=pick(0, "bfs"), config=_tiny("naive"), miss_scale=1.0),
        Cell(label="aug", workload=pick(1, "kmeans"), config=_tiny("augmented"), miss_scale=1.0),
        Cell(label="base", workload=pick(2, "bfs"), config=_tiny("no_tlb"), miss_scale=1.0),
    ]
    if not quick:
        cells += [
            Cell(label="aug", workload=pick(3, "bfs"), config=_tiny("augmented"), miss_scale=1.0),
            Cell(label="naive", workload=pick(4, "kmeans"), config=_tiny("naive"), miss_scale=1.0),
            Cell(
                label="ideal",
                workload=pick(5, "memcached"),
                config=_tiny("ideal"),
                miss_scale=1.0,
            ),
        ]
    return cells


def _on_engine(cell: Cell, engine: Optional[str]) -> Cell:
    """The cell running on ``engine`` (None keeps the config's own)."""
    if engine is None or cell.config.engine == engine:
        return cell
    return replace(cell, config=cell.config.with_(engine=engine))


def _poisoned_cell() -> Cell:
    return Cell(
        label="poisoned",
        workload="bfs",
        config=_tiny(
            "augmented",
            faults=FaultConfig(
                enabled=True, ptw_error_rate=1.0, ptw_max_retries=1, seed=3
            ),
        ),
        miss_scale=1.0,
    )


class _Killer:
    """The seeded chaos hook: SIGKILLs snapshotted workers mid-sweep.

    The *first* worker observed with an on-disk snapshot is always
    killed (so at least one restart resumes from a snapshot); after
    that, each supervision tick rolls the seeded RNG per snapshotted
    worker, up to ``max_kills`` total.  Workers close to their restart
    budget are spared — the campaign proves recovery, exhaustion has
    its own test.
    """

    def __init__(self, seed: int, max_kills: int):
        self.rng = random.Random(seed)
        self.max_kills = max_kills
        self.kills = 0

    def __call__(self, pool) -> None:
        if self.kills >= self.max_kills:
            return
        for index, worker in list(pool.active.items()):
            if worker.pid is None or worker.spawns > RESTART_BUDGET - 1:
                continue
            if not os.path.exists(pool.snapshot_path(index)):
                continue
            if self.kills > 0 and self.rng.random() >= 0.10:
                continue
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except ProcessLookupError:
                continue
            self.kills += 1
            if self.kills >= self.max_kills:
                return


def _canonical(results) -> List[str]:
    return [result.canonical_json() for result in results]


def _step(verbose: bool, name: str, detail: str = "") -> None:
    suffix = f" — {detail}" if detail else ""
    print(f"chaos: {name}{suffix}")
    if verbose:
        sys.stdout.flush()


def run_campaign(
    *,
    seed: int = 0,
    quick: bool = False,
    jobs: int = 2,
    workloads: Optional[List[str]] = None,
    verbose: bool = False,
    engine: Optional[str] = None,
) -> int:
    """Execute the full campaign; returns the process exit code."""
    failures: List[str] = []
    matrix = [_on_engine(cell, engine) for cell in _matrix(quick, workloads)]
    kills_wanted = 1 if quick else 2

    _step(verbose, "baseline", f"{len(matrix)} cells, serial")
    started = time.monotonic()
    baseline = _canonical(SweepExecutor(jobs=1).run(matrix))
    _step(verbose, "baseline done", f"{time.monotonic() - started:.1f}s")

    # -- 1. kill/resume -----------------------------------------------
    killer = _Killer(seed, max_kills=max(kills_wanted, 1))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        executor = SweepExecutor(
            jobs=jobs,
            chaos=killer,
            snapshot_every=SNAPSHOT_EVERY,
            restart_budget=RESTART_BUDGET,
            stale_after=30.0,
        )
        recovered = _canonical(executor.run(matrix))
    if killer.kills < 1:
        failures.append(
            "kill/resume: no worker was killed — the campaign never "
            "exercised the resume path"
        )
    if recovered != baseline:
        failures.append(
            "kill/resume: recovered results differ from the clean "
            "serial run"
        )
    if caught:
        rendered = "; ".join(str(w.message) for w in caught)
        failures.append(
            f"kill/resume: sweep degraded with warnings ({rendered})"
        )
    _step(
        verbose,
        "kill/resume",
        f"{killer.kills} worker(s) SIGKILLed, results "
        + ("identical" if recovered == baseline else "MISMATCH"),
    )

    # -- 2. torn checkpoint -------------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        checkpoint_path = os.path.join(tmp, "sweep.jsonl")
        with SweepCheckpoint(checkpoint_path) as checkpoint:
            SweepExecutor(jobs=1, checkpoint=checkpoint).run(matrix[:1])
            complete_before = checkpoint.completed
        with open(checkpoint_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn-mid-appe')  # crash mid-append
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with SweepCheckpoint(checkpoint_path) as checkpoint:
                kept = checkpoint.completed
                resumed = _canonical(
                    SweepExecutor(jobs=1, checkpoint=checkpoint).run(matrix)
                )
        torn_warned = any(
            "truncated" in str(w.message) for w in caught
        )
        if not torn_warned:
            failures.append(
                "torn checkpoint: the truncated line was dropped "
                "silently (expected a warning)"
            )
        if kept != complete_before:
            failures.append(
                f"torn checkpoint: {complete_before} complete entries "
                f"before the tear, {kept} after reload"
            )
        if resumed != baseline:
            failures.append(
                "torn checkpoint: resumed results differ from baseline"
            )
        _step(
            verbose,
            "torn checkpoint",
            f"warned={torn_warned}, kept={kept}/{complete_before}, "
            + ("identical" if resumed == baseline else "MISMATCH"),
        )

        # -- 3. truncated snapshot ------------------------------------
        from repro.snapshot.runner import (
            execute_cell_resumable,
            simulate_cell_resumable,
        )

        snap_path = os.path.join(tmp, "snap.json")
        cell = matrix[0]
        # A bare simulate (unlike execute_cell_resumable) leaves its
        # last periodic snapshot on disk — a tight period guarantees
        # one exists even for these tiny cells.  Tear it in half and
        # prove the resume path recomputes rather than wedges.
        simulate_cell_resumable(
            cell, snapshot_path=snap_path, snapshot_every=200
        )
        if os.path.exists(snap_path):
            size = os.path.getsize(snap_path)
            with open(snap_path, "r+b") as handle:
                handle.truncate(size // 2)
            recomputed = execute_cell_resumable(
                cell, snapshot_path=snap_path
            ).canonical_json()
            if recomputed != baseline[0]:
                failures.append(
                    "truncated snapshot: recomputed cell differs from "
                    "baseline"
                )
            _step(
                verbose,
                "truncated snapshot",
                f"torn at {size // 2}/{size} bytes, "
                + ("identical" if recomputed == baseline[0] else "MISMATCH"),
            )
        else:
            failures.append(
                "truncated snapshot: no snapshot file was produced"
            )

    # -- 4. mid-sweep faults ------------------------------------------
    poisoned = _on_engine(_poisoned_cell(), engine)
    chaos_matrix = matrix[:2] + [poisoned] + matrix[2:]
    poisoned_index = 2
    error: Optional[SimulationError] = None
    try:
        SweepExecutor(
            jobs=jobs,
            snapshot_every=SNAPSHOT_EVERY,
            restart_budget=RESTART_BUDGET,
        ).run(chaos_matrix)
        failures.append(
            "mid-sweep faults: the poisoned cell did not raise"
        )
    except PTWError as exc:
        error = exc
    except SimulationError as exc:
        failures.append(
            f"mid-sweep faults: expected PTWError, got "
            f"{type(exc).__name__}: {exc}"
        )
    if error is not None and error.diagnostics.get("series") != "poisoned":
        failures.append(
            "mid-sweep faults: the structured error does not name the "
            "poisoned series"
        )
    _step(
        verbose,
        "mid-sweep faults",
        f"poisoned cell #{poisoned_index} raised "
        f"{type(error).__name__ if error else 'nothing'}",
    )

    if failures:
        print()
        for failure in failures:
            print(f"chaos FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"chaos: all checks passed (seed {seed}, {killer.kills} kill(s), "
        f"{len(matrix)} cells)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness chaos",
        description="Seeded chaos campaign proving sweep recovery.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="chaos RNG seed (default 0)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix and one guaranteed kill (CI smoke mode)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="supervised worker slots (default 2)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset the campaign cells cycle "
        "through (default: the built-in mix)",
    )
    parser.add_argument(
        "--server",
        action="store_true",
        help="attack the repro.serve daemon instead of the sweep pool "
        "(SIGKILL mid-sweep, torn journal, expired leases, admission "
        "floods)",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help="attack the repro.dist coordinator/worker protocol instead "
        "(SIGKILL a worker holding a lease, partition a lease holder, "
        "replay completion pushes, tear result bodies)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(available_engines()),
        help="simulator core for every campaign cell (default: each "
        "config's own, normally 'event')",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="flush per-step progress"
    )
    args = parser.parse_args(argv)
    workloads = args.workloads.split(",") if args.workloads else None
    if workloads:
        from repro.workloads.registry import workload_names

        known = set(workload_names())
        bad = [w for w in workloads if w not in known]
        if bad:
            print(
                f"unknown workload(s) {bad}; choose from {sorted(known)}",
                file=sys.stderr,
            )
            return 2
    if args.server and args.distributed:
        print("pick one of --server / --distributed", file=sys.stderr)
        return 2
    if args.distributed:
        from repro.harness.chaos_dist import run_dist_campaign

        return run_dist_campaign(
            seed=args.seed,
            quick=args.quick,
            workloads=workloads,
            verbose=args.verbose,
            engine=args.engine,
        )
    if args.server:
        from repro.harness.chaos_server import run_server_campaign

        return run_server_campaign(
            seed=args.seed,
            quick=args.quick,
            workloads=workloads,
            verbose=args.verbose,
            engine=args.engine,
        )
    if args.jobs < 2:
        print("chaos needs --jobs >= 2 (supervision only runs in the "
              "parallel path)", file=sys.stderr)
        return 2
    return run_campaign(
        seed=args.seed,
        quick=args.quick,
        jobs=args.jobs,
        workloads=workloads,
        verbose=args.verbose,
        engine=args.engine,
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
