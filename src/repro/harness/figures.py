"""Per-figure experiment drivers.

Every function regenerates one table/figure of the paper's evaluation
and returns a :class:`FigureResult`.  Speedups are always against the
no-TLB baseline of the same machine (the paper's y-axis convention),
except the TBC figures, which normalize against TBC-less stack
execution without TLBs, and Figure 22, which the paper normalizes the
same way as Figure 20.

Absolute values are not expected to match the paper (its substrate was
GPGPU-Sim on real Rodinia binaries); the qualitative claims each driver
reproduces are stated in its docstring and surfaced as notes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api import simulate
from repro.core import presets
from repro.core.config import GPUConfig
from repro.harness.experiment import (
    DEFAULT_WARMUP,
    FigureResult,
    run_matrix,
    speedups_vs_baseline,
)
from repro.workloads.registry import workload_names

_KW = dict(warmup_instructions=DEFAULT_WARMUP)

# Every named design point below comes from the one shared registry
# (GPUConfig.preset, backed by repro.core.presets.PRESETS), so figure
# drivers and user code build configs the same way; only parameterized
# sweeps (geometry, walker pools) and the scheduler/TBC combinators
# still call repro.core.presets directly.
_preset = GPUConfig.preset


def _workloads(workloads: Optional[Sequence[str]]) -> Sequence[str]:
    return list(workloads) if workloads is not None else workload_names()


def fig02_naive_tlb(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 2: naive 128-entry 3-port TLBs degrade performance in
    every case, with and without CCWS and TBC."""
    names = _workloads(workloads)
    linear = run_matrix(
        {
            "no-tlb": lambda: _preset("no_tlb", **_KW),
            "naive-tlb": lambda: _preset("naive", ports=3, **_KW),
            "ccws": lambda: presets.with_ccws(_preset("no_tlb", **_KW)),
            "ccws+naive-tlb": lambda: presets.with_ccws(
                _preset("naive", ports=3, **_KW)
            ),
        },
        workloads=names,
    )
    series = speedups_vs_baseline(linear, "no-tlb")
    # TBC rows run on the block-form workloads, normalized to the same
    # machine executing them with reconvergence stacks and no TLB.
    tbc = run_matrix(
        {
            "stack-no-tlb": lambda: _preset("no_tlb", warmup_instructions=0),
            "tbc": lambda: presets.with_tbc(
                _preset("no_tlb", warmup_instructions=0), "tbc"
            ),
            "tbc+naive-tlb": lambda: presets.with_tbc(
                _preset("naive", ports=3, warmup_instructions=0), "tbc"
            ),
        },
        workloads=names,
        form="blocks",
    )
    series.update(speedups_vs_baseline(tbc, "stack-no-tlb"))
    return FigureResult(
        figure="fig02",
        title="Speedup of naive 3-port TLBs, alone and under CCWS / TBC "
        "(vs no-TLB baseline)",
        series=series,
        notes=[
            "Expected shape: every *naive-tlb* series sits below 1.0, and "
            "below its TLB-less counterpart.",
        ],
    )


def fig03_characterization(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 3: memory-instruction fraction, 128-entry TLB miss rate
    (left), and average/max page divergence (right).

    Uses the unscaled characterization stream (see
    ``repro.workloads.base.TIMING_MISS_SCALE``)."""
    names = _workloads(workloads)
    series: Dict[str, Dict[str, float]] = {
        "mem instr %": {},
        "tlb miss rate %": {},
        "avg page divergence": {},
        "max page divergence": {},
    }
    for name in names:
        result = simulate(
            config=_preset("blocking", **_KW), workload=name, miss_scale=1.0
        )
        stats = result.stats
        series["mem instr %"][name] = 100.0 * stats.memory_instruction_fraction
        series["tlb miss rate %"][name] = 100.0 * stats.tlb_miss_rate
        series["avg page divergence"][name] = stats.average_page_divergence
        series["max page divergence"][name] = float(stats.page_divergence_max)
    return FigureResult(
        figure="fig03",
        title="Workload characterization: memory fraction, 128-entry TLB "
        "miss rates, page divergence",
        series=series,
        notes=[
            "Paper bands: mem instr < 25 %; miss rates 22-70 %; bfs/mummer "
            "average divergence > 4 / > 8; maxima near warp width.",
        ],
    )


def fig04_miss_latency(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 4: average cycles per TLB miss versus per L1 miss (~2x in
    the paper, because a walk makes four dependent references)."""
    names = _workloads(workloads)
    series: Dict[str, Dict[str, float]] = {
        "avg L1 miss cycles": {},
        "avg TLB miss cycles": {},
        "ratio": {},
    }
    for name in names:
        result = simulate(config=_preset("blocking", **_KW), workload=name)
        l1 = result.avg_l1_miss_cycles
        tlb = result.stats.average_tlb_miss_cycles
        series["avg L1 miss cycles"][name] = l1
        series["avg TLB miss cycles"][name] = tlb
        series["ratio"][name] = tlb / l1 if l1 else 0.0
    return FigureResult(
        figure="fig04",
        title="TLB miss penalty vs L1 miss penalty (naive TLB)",
        series=series,
        notes=[
            "The paper reports ~2x. Our walker prioritizes walk "
            "references past data queues (see SharedMemory.access_line), "
            "so loaded ratios can drop below the unloaded ~2.5x "
            "(4 dependent L2-latency hops vs 1).",
        ],
    )


def fig06_size_ports(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 6: TLB size (64-512) and port count (3-32) sweep with
    *fixed access times* (the figure's stated assumption); larger and
    wider helps, saturating past 128 entries."""
    names = _workloads(workloads)
    configs = {"no-tlb": lambda: _preset("no_tlb", **_KW)}
    for entries in (64, 128, 256, 512):
        configs[f"{entries}e/4p"] = (
            lambda entries=entries: presets.tlb_with_geometry(
                entries, 4, ideal=True, **_KW
            )
        )
    for ports in (3, 4, 8, 32):
        configs[f"128e/{ports}p"] = (
            lambda ports=ports: presets.tlb_with_geometry(
                128, ports, ideal=True, **_KW
            )
        )
    results = run_matrix(configs, workloads=names)
    return FigureResult(
        figure="fig06",
        title="TLB size and port sweep, fixed access times (vs no-TLB)",
        series=speedups_vs_baseline(results, "no-tlb"),
        notes=[
            "With fixed access times larger TLBs monotonically help; the "
            "realistic-latency ablation (bench_ablation_cacti) shows why "
            "128 entries / 4 ports is the practical knee.",
        ],
    )


def fig07_nonblocking(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 7: hit-under-miss, then overlapped cache access, recover
    performance toward the ideal TLB."""
    names = _workloads(workloads)
    results = run_matrix(
        {
            "no-tlb": lambda: _preset("no_tlb", **_KW),
            "naive 128e/4p": lambda: _preset("blocking", **_KW),
            "+hit-under-miss": lambda: _preset("hit_under_miss", **_KW),
            "+cache-overlap": lambda: _preset("non_blocking", **_KW),
            "ideal 512e/32p": lambda: _preset("ideal", **_KW),
        },
        workloads=names,
    )
    return FigureResult(
        figure="fig07",
        title="Non-blocking TLB steps vs ideal (vs no-TLB)",
        series=speedups_vs_baseline(results, "no-tlb"),
        notes=[
            "Expected ordering: naive <= +hit-under-miss <= +cache-overlap "
            "<= ideal. In our model the big recovery arrives with PTW "
            "scheduling (fig10); blocking-vs-HuM deltas are visible mainly "
            "on the low-miss workloads because the serial walker saturates "
            "on the divergent ones.",
        ],
    )


def fig10_ptw_scheduling(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 10: adding PTW scheduling brings the 128-entry augmented
    design within a few percent of the ideal 512-entry/32-port TLB."""
    names = _workloads(workloads)
    results = run_matrix(
        {
            "no-tlb": lambda: _preset("no_tlb", **_KW),
            "naive 128e/4p": lambda: _preset("blocking", **_KW),
            "non-blocking": lambda: _preset("non_blocking", **_KW),
            "+ptw-scheduling": lambda: _preset("augmented", **_KW),
            "ideal 512e/32p": lambda: _preset("ideal", **_KW),
        },
        workloads=names,
    )
    figure = FigureResult(
        figure="fig10",
        title="Augmented TLB (+PTW scheduling) approaches the ideal "
        "(vs no-TLB)",
        series=speedups_vs_baseline(results, "no-tlb"),
    )
    # The paper also reports walk-reference elimination and walk cache
    # hit rates for the scheduled walker.
    elim: Dict[str, float] = {}
    ptw_hits: Dict[str, float] = {}
    for name in names:
        result = run_matrix(
            {"aug": lambda: _preset("augmented", **_KW)}, workloads=[name]
        )["aug"][name]
        elim[name] = 100.0 * result.stats.walk_refs_eliminated_fraction
        ptw_hits[name] = 100.0 * result.ptw_l2_hit_rate
    figure.series["walk refs eliminated %"] = elim
    figure.series["walk L2 hit rate %"] = ptw_hits
    figure.notes.append(
        "Paper: 10-20 % of walk references eliminated, walk cache hit "
        "rates up 5-8 %, augmented within ~1 % of ideal."
    )
    return figure


def fig11_multi_ptw(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 11: one augmented (scheduled, non-blocking) walker
    outperforms pools of 2-8 naive serial walkers."""
    names = _workloads(workloads)
    configs = {"no-tlb": lambda: _preset("no_tlb", **_KW)}
    for count in (1, 2, 4, 8):
        configs[f"naive x{count} PTW"] = (
            lambda count=count: presets.multi_ptw_tlb(count, **_KW)
        )
    configs["augmented x1 PTW"] = lambda: _preset("augmented", **_KW)
    results = run_matrix(configs, workloads=names)
    return FigureResult(
        figure="fig11",
        title="Multiple naive PTWs vs one augmented PTW (vs no-TLB)",
        series=speedups_vs_baseline(results, "no-tlb"),
        notes=["Expected: augmented x1 beats naive x8 on every workload."],
    )


def fig13_ccws(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 13: CCWS loses most of its gain with naive TLBs; augmented
    TLBs recover part of it, but a gap to TLB-less CCWS remains."""
    names = _workloads(workloads)
    results = run_matrix(
        {
            "no-tlb": lambda: _preset("no_tlb", **_KW),
            "naive-tlb": lambda: _preset("blocking", **_KW),
            "augmented-tlb": lambda: _preset("augmented", **_KW),
            "ccws (no tlb)": lambda: presets.with_ccws(_preset("no_tlb", **_KW)),
            "ccws+naive": lambda: presets.with_ccws(
                _preset("blocking", **_KW)
            ),
            "ccws+augmented": lambda: presets.with_ccws(
                _preset("augmented", **_KW)
            ),
        },
        workloads=names,
    )
    return FigureResult(
        figure="fig13",
        title="CCWS with and without TLBs (vs no-TLB round-robin)",
        series=speedups_vs_baseline(results, "no-tlb"),
        notes=[
            "Expected: ccws > 1; ccws+naive far below ccws; "
            "ccws+augmented in between.",
        ],
    )


def fig16_ta_ccws(
    workloads: Optional[Sequence[str]] = None,
    weights: Sequence[int] = (1, 2, 4, 8),
) -> FigureResult:
    """Figure 16: weighting TLB-missing cache misses more heavily in the
    lost-locality score (TA-CCWS) recovers CCWS performance; 4:1 best."""
    names = _workloads(workloads)
    configs = {
        "no-tlb": lambda: _preset("no_tlb", **_KW),
        "ccws (no tlb)": lambda: presets.with_ccws(_preset("no_tlb", **_KW)),
        "ccws+augmented": lambda: presets.with_ccws(_preset("augmented", **_KW)),
    }
    for weight in weights:
        configs[f"ta-ccws {weight}:1"] = (
            lambda weight=weight: presets.with_ta_ccws(
                _preset("augmented", **_KW), tlb_miss_weight=weight
            )
        )
    results = run_matrix(configs, workloads=names)
    return FigureResult(
        figure="fig16",
        title="TA-CCWS TLB-miss weighting sweep (vs no-TLB round-robin)",
        series=speedups_vs_baseline(results, "no-tlb"),
        notes=["Expected: heavier weights close the gap to TLB-less CCWS."],
    )


def fig17_tcws_epw(
    workloads: Optional[Sequence[str]] = None,
    entries_per_warp: Sequence[int] = (2, 4, 8, 16),
) -> FigureResult:
    """Figure 17: TCWS entries-per-warp sweep; 8 typically best, and
    TCWS outperforms TA-CCWS with half the VTA hardware."""
    names = _workloads(workloads)
    configs = {
        "no-tlb": lambda: _preset("no_tlb", **_KW),
        "ccws (no tlb)": lambda: presets.with_ccws(_preset("no_tlb", **_KW)),
        "ta-ccws 4:1": lambda: presets.with_ta_ccws(_preset("augmented", **_KW)),
    }
    for epw in entries_per_warp:
        configs[f"tcws {epw}epw"] = (
            lambda epw=epw: presets.with_tcws(
                _preset("augmented", **_KW), entries_per_warp=epw
            )
        )
    results = run_matrix(configs, workloads=names)
    return FigureResult(
        figure="fig17",
        title="TCWS victim-tag-array size sweep (vs no-TLB round-robin)",
        series=speedups_vs_baseline(results, "no-tlb"),
    )


def fig18_tcws_lru(
    workloads: Optional[Sequence[str]] = None,
    weight_sets: Sequence[Sequence[int]] = ((1, 2, 3, 4), (1, 2, 4, 8), (1, 3, 6, 9)),
) -> FigureResult:
    """Figure 18: LRU-depth-weighted scoring on TLB hits; (1,2,4,8)
    typically best, within 1-15 % of TLB-less CCWS."""
    names = _workloads(workloads)
    configs = {
        "no-tlb": lambda: _preset("no_tlb", **_KW),
        "ccws (no tlb)": lambda: presets.with_ccws(_preset("no_tlb", **_KW)),
    }
    for weights in weight_sets:
        label = "tcws LRU" + str(tuple(weights))
        configs[label] = (
            lambda weights=tuple(weights): presets.with_tcws(
                _preset("augmented", **_KW), lru_hit_weights=weights
            )
        )
    results = run_matrix(configs, workloads=names)
    return FigureResult(
        figure="fig18",
        title="TCWS LRU-depth weight sweep (vs no-TLB round-robin)",
        series=speedups_vs_baseline(results, "no-tlb"),
    )


def fig20_tbc(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 20: TBC with naive TLBs loses heavily versus TBC without
    TLBs; augmented TLBs recover much but a ~20 % gap remains."""
    names = _workloads(workloads)
    kw = dict(warmup_instructions=0)
    results = run_matrix(
        {
            "stack-no-tlb": lambda: _preset("no_tlb", **kw),
            "tbc (no tlb)": lambda: presets.with_tbc(_preset("no_tlb", **kw), "tbc"),
            "tbc+naive": lambda: presets.with_tbc(
                _preset("blocking", **kw), "tbc"
            ),
            "tbc+augmented": lambda: presets.with_tbc(
                _preset("augmented", **kw), "tbc"
            ),
            "naive (no tbc)": lambda: _preset("blocking", **kw),
            "augmented (no tbc)": lambda: _preset("augmented", **kw),
        },
        workloads=names,
        form="blocks",
    )
    figure = FigureResult(
        figure="fig20",
        title="TBC with and without TLBs (vs stack execution, no TLB)",
        series=speedups_vs_baseline(results, "stack-no-tlb"),
        notes=[
            "Expected: tbc > 1 on divergent workloads; tbc+naive far below "
            "tbc; tbc+augmented recovers most of the gap.",
        ],
    )
    # Page-divergence amplification (paper: +2-4 on average).
    amplification: Dict[str, float] = {}
    for name in names:
        stack = results["stack-no-tlb"][name].stats.average_page_divergence
        tbc = results["tbc (no tlb)"][name].stats.average_page_divergence
        amplification[name] = tbc - stack
    figure.series["page divergence increase"] = amplification
    return figure


def fig22_tlb_tbc(
    workloads: Optional[Sequence[str]] = None,
    counter_bits: Sequence[int] = (1, 2, 3),
) -> FigureResult:
    """Figure 22: TLB-aware TBC (Common Page Matrix) versus TBC, with
    1-3-bit CPM counters."""
    names = _workloads(workloads)
    kw = dict(warmup_instructions=0)
    configs = {
        "stack-no-tlb": lambda: _preset("no_tlb", **kw),
        "tbc (no tlb)": lambda: presets.with_tbc(_preset("no_tlb", **kw), "tbc"),
        "tbc+augmented": lambda: presets.with_tbc(
            _preset("augmented", **kw), "tbc"
        ),
    }
    for bits in counter_bits:
        configs[f"tlb-tbc {bits}b"] = (
            lambda bits=bits: presets.with_tbc(
                _preset("augmented", **kw), "tlb-tbc", counter_bits=bits
            )
        )
    results = run_matrix(configs, workloads=names, form="blocks")
    return FigureResult(
        figure="fig22",
        title="TLB-aware TBC, CPM counter-bit sweep (vs stack, no TLB)",
        series=speedups_vs_baseline(results, "stack-no-tlb"),
        notes=[
            "The CPM verifiably removes TBC's page-divergence "
            "amplification, but in this reproduction compulsory (cold) "
            "misses dominate, so avoiding divergence does not recoup the "
            "compaction it sacrifices — tlb-tbc lands at or slightly below "
            "tbc+augmented rather than above it (divergence from the "
            "paper; see EXPERIMENTS.md).",
        ],
    )


def sec9_large_pages(workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Section 9: with 2 MB pages divergence collapses for the regular
    workloads but mummergpu/bfs retain significant page divergence."""
    names = _workloads(workloads)
    series: Dict[str, Dict[str, float]] = {
        "avg pdiv 4KB": {},
        "avg pdiv 2MB": {},
        "tlb miss 4KB %": {},
        "tlb miss 2MB %": {},
    }
    for name in names:
        small = simulate(
            config=_preset("blocking", **_KW), workload=name, miss_scale=1.0
        )
        large_cfg = _preset("blocking", page_shift=21, **_KW)
        large = simulate(config=large_cfg, workload=name, miss_scale=1.0)
        series["avg pdiv 4KB"][name] = small.stats.average_page_divergence
        series["avg pdiv 2MB"][name] = large.stats.average_page_divergence
        series["tlb miss 4KB %"][name] = 100 * small.stats.tlb_miss_rate
        series["tlb miss 2MB %"][name] = 100 * large.stats.tlb_miss_rate
    return FigureResult(
        figure="sec9",
        title="Large (2MB) pages: divergence and miss-rate relief",
        series=series,
        notes=[
            "Paper: large pages usually collapse divergence, but "
            "mummergpu and bfs keep divergence of ~6 and ~3.",
        ],
    )


#: All drivers, keyed by figure id (used by tests and the bench index).
ALL_FIGURES = {
    "fig02": fig02_naive_tlb,
    "fig03": fig03_characterization,
    "fig04": fig04_miss_latency,
    "fig06": fig06_size_ports,
    "fig07": fig07_nonblocking,
    "fig10": fig10_ptw_scheduling,
    "fig11": fig11_multi_ptw,
    "fig13": fig13_ccws,
    "fig16": fig16_ta_ccws,
    "fig17": fig17_tcws_epw,
    "fig18": fig18_tcws_lru,
    "fig20": fig20_tbc,
    "fig22": fig22_tlb_tbc,
    "sec9": sec9_large_pages,
}
