"""``python -m repro.harness bench`` — calibrated perf benchmarking.

Runs a matrix of paper figures through the :mod:`repro.api` facade with
the :mod:`repro.prof` phase profiler installed, and writes one
schema-versioned ``BENCH_<n>.json`` report (see
:mod:`repro.prof.benchfile`) recording per-figure wall time, sweep-cell
throughput, simulated-cycle throughput, the host-time phase breakdown,
peak RSS, and a snapshot of the unified metrics registry.

``--observed`` re-runs each figure a second time with event tracing
and span recording live (via :func:`repro.core.simulator.trace_override`
— the configs, results, and cache keys are untouched) and records
``observed_wall_s`` / ``observed_overhead`` per figure and in totals:
the measured price of full observability.

Two calibrated matrices:

- ``--quick`` (the default): four representative figures x two
  workloads, sized to finish in well under a minute on a laptop — the
  CI smoke matrix.
- ``--full``: every figure over every workload — the number that
  matters before/after a performance PR.

The run always executes serially (``jobs=1``): the profiler attributes
host time in-process, and worker subprocesses would escape it.  Each
new report is compared against the most recent prior ``BENCH_*.json``
in the output directory (or an explicit ``--compare PATH`` baseline);
the verdict is informational unless ``--strict``, which exits non-zero
on a regression.
"""

from __future__ import annotations

import argparse
import pathlib
import platform
import resource
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.api import figure as api_figure
from repro.core.config import TraceConfig
from repro.core.simulator import trace_override
from repro.engines import available_engines
from repro.harness.figures import ALL_FIGURES
from repro.obs.spans import SpanRecorder, record_spans
from repro.prof import benchfile
from repro.prof.export import registry_to_dict
from repro.prof.profiler import PhaseProfiler, profile
from repro.prof.registry import REGISTRY
from repro.workloads.registry import workload_names

#: The quick matrix: one figure per subsystem the profiler instruments
#: (naive TLB, miss latency, non-blocking TLB, PTW scheduling), small
#: enough for CI smoke runs.
QUICK_FIGURES = ("fig02", "fig04", "fig07", "fig10")
QUICK_WORKLOADS = ("bfs", "kmeans")


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise
    to kilobytes so reports compare across hosts.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _host() -> Dict[str, Any]:
    import os

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _git() -> Optional[Dict[str, Any]]:
    """The commit this report measured: ``{"commit", "dirty"}``.

    Returns None when the tree is not a git checkout (or git is
    missing) — the key is optional in the schema so reports stay
    comparable across packaging contexts.
    """
    import subprocess

    here = pathlib.Path(__file__).resolve().parent
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=here,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if commit.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=here,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        "commit": commit.stdout.strip(),
        "dirty": bool(status.stdout.strip())
        if status.returncode == 0
        else None,
    }


#: The observed pass's trace configuration: ring-only event tracing
#: (no file sinks) plus interval sampling — what a traced production
#: run pays at minimum.
OBSERVED_TRACE = TraceConfig(
    enabled=True, ring_capacity=4096, interval_cycles=250
)


def run_bench(
    figures: Sequence[str],
    workloads: Optional[Sequence[str]],
    mode: str,
    stream=None,
    engine: Optional[str] = None,
    observed: bool = False,
) -> Dict[str, Any]:
    """Run the matrix and build the report dict (not yet written)."""
    REGISTRY.clear()
    report_figures: Dict[str, Any] = {}
    total_wall = 0.0
    total_cells = 0
    total_cycles = 0
    total_observed = 0.0
    for name in figures:
        if stream is not None:
            stream.write(f"[bench] {name} ...\n")
            stream.flush()
        profiler = PhaseProfiler()
        start = time.perf_counter()
        with profile(profiler):
            api_figure(
                name=name,
                workloads=list(workloads) if workloads else None,
                jobs=1,
                engine=engine,
            )
        wall = time.perf_counter() - start
        cells = profiler.counts.get("cells", 0)
        cycles = profiler.counts.get("sim_cycles", 0)
        report_figures[name] = {
            "wall_s": round(wall, 4),
            "cells": cells,
            "cells_per_s": round(cells / wall, 4) if wall > 0 else 0.0,
            "sim_cycles": cycles,
            "cycles_per_s": round(cycles / wall, 1) if wall > 0 else 0.0,
            "phases": profiler.to_dict()["phases"],
        }
        total_wall += wall
        total_cells += cells
        total_cycles += cycles
        if observed:
            # The observed column: the same figure with event tracing
            # and span recording live for every cell.  Results are
            # byte-identical (pinned by tests/engines/test_observers.py);
            # the ratio is the price of full observability.
            recorder = SpanRecorder(keep_slowest=5)
            start = time.perf_counter()
            with trace_override(OBSERVED_TRACE), record_spans(recorder):
                api_figure(
                    name=name,
                    workloads=list(workloads) if workloads else None,
                    jobs=1,
                    engine=engine,
                )
            observed_wall = time.perf_counter() - start
            total_observed += observed_wall
            report_figures[name]["observed_wall_s"] = round(observed_wall, 4)
            report_figures[name]["observed_overhead"] = (
                round(observed_wall / wall, 3) if wall > 0 else 0.0
            )
        if stream is not None:
            line = (
                f"[bench] {name}: {wall:.2f}s, {cells} cells, "
                f"{cycles} cycles"
            )
            if observed:
                entry = report_figures[name]
                line += (
                    f", observed {entry['observed_wall_s']:.2f}s "
                    f"(x{entry['observed_overhead']:.2f})"
                )
            stream.write(line + "\n")
            stream.flush()
    report: Dict[str, Any] = {
        "schema_version": benchfile.BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "mode": mode,
        "host": _host(),
        "figures": report_figures,
        "totals": {
            "wall_s": round(total_wall, 4),
            "cells": total_cells,
            "cells_per_s": (
                round(total_cells / total_wall, 4) if total_wall > 0 else 0.0
            ),
            "sim_cycles": total_cycles,
            "cycles_per_s": (
                round(total_cycles / total_wall, 1) if total_wall > 0 else 0.0
            ),
            "peak_rss_kb": _peak_rss_kb(),
        },
        "metrics": registry_to_dict(REGISTRY),
    }
    if observed:
        report["totals"]["observed_wall_s"] = round(total_observed, 4)
        report["totals"]["observed_overhead"] = (
            round(total_observed / total_wall, 3) if total_wall > 0 else 0.0
        )
    if engine is not None:
        report["engine"] = engine
    git = _git()
    if git is not None:
        report["git"] = git
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness bench",
        description="Benchmark the figure matrix and record a "
        "BENCH_<n>.json perf-trajectory report.",
    )
    matrix = parser.add_mutually_exclusive_group()
    matrix.add_argument(
        "--quick",
        action="store_true",
        help="the calibrated smoke matrix "
        f"({','.join(QUICK_FIGURES)} x {','.join(QUICK_WORKLOADS)}; "
        "the default)",
    )
    matrix.add_argument(
        "--full",
        action="store_true",
        help="every figure over every workload",
    )
    parser.add_argument(
        "--figures",
        default=None,
        help="comma-separated figure subset (overrides the matrix)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset (overrides the matrix)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="report path (default: next BENCH_<n>.json in --dir)",
    )
    parser.add_argument(
        "--dir",
        default=".",
        metavar="DIR",
        help="directory holding the BENCH_<n>.json sequence "
        "(default: current directory)",
    )
    parser.add_argument(
        "--compare",
        nargs="?",
        const="auto",
        default="auto",
        metavar="PATH",
        help="baseline report to compare against (default: the most "
        "recent prior BENCH_<n>.json; 'none' disables)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=benchfile.DEFAULT_THRESHOLD,
        help="regression threshold as a fraction "
        f"(default {benchfile.DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(available_engines()),
        help="simulator core to benchmark (default: each config's own, "
        "normally 'event'; recorded in the report when set)",
    )
    parser.add_argument(
        "--observed",
        action="store_true",
        help="add an observed column: re-run each figure with event "
        "tracing and span recording live (byte-identical results) and "
        "record the wall time plus overhead ratio",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the comparison verdict is a regression",
    )
    args = parser.parse_args(argv)

    if args.figures:
        figures = args.figures.split(",")
        mode = "custom"
    elif args.full:
        figures = list(ALL_FIGURES)
        mode = "full"
    else:
        figures = list(QUICK_FIGURES)
        mode = "quick"
    unknown = [f for f in figures if f not in ALL_FIGURES]
    if unknown:
        print(
            f"unknown figure(s) {unknown}; choose from "
            f"{sorted(ALL_FIGURES)}",
            file=sys.stderr,
        )
        return 2

    if args.workloads:
        workloads: Optional[List[str]] = args.workloads.split(",")
        if not args.figures:
            mode = "custom"
    elif args.full:
        workloads = None
    else:
        workloads = list(QUICK_WORKLOADS)
    if workloads:
        known = set(workload_names())
        bad = [w for w in workloads if w not in known]
        if bad:
            print(
                f"unknown workload(s) {bad}; choose from {sorted(known)}",
                file=sys.stderr,
            )
            return 2

    root = pathlib.Path(args.dir)
    if not root.is_dir():
        print(f"--dir {root} is not a directory", file=sys.stderr)
        return 2
    # Resolve the baseline BEFORE running: the new report must not be
    # its own baseline, and an explicit bad path should fail fast.
    baseline_path: Optional[pathlib.Path]
    if args.compare == "none":
        baseline_path = None
    elif args.compare == "auto":
        baseline_path = benchfile.latest_bench_path(root)
    else:
        baseline_path = pathlib.Path(args.compare)
        if not baseline_path.is_file():
            print(
                f"--compare baseline {baseline_path} not found",
                file=sys.stderr,
            )
            return 2
    out = (
        pathlib.Path(args.out)
        if args.out
        else benchfile.next_bench_path(root)
    )

    report = run_bench(
        figures,
        workloads,
        mode,
        stream=sys.stderr,
        engine=args.engine,
        observed=args.observed,
    )
    benchfile.save(report, out)
    totals = report["totals"]
    print(
        f"wrote {out}: {len(report['figures'])} figures, "
        f"{totals['cells']} cells in {totals['wall_s']:.2f}s "
        f"({totals['cells_per_s']:.2f} cells/s, "
        f"peak RSS {totals['peak_rss_kb']} kB)"
    )

    if baseline_path is None:
        return 0
    try:
        baseline = benchfile.load(baseline_path)
    except ValueError as error:
        print(f"skipping comparison: {error}", file=sys.stderr)
        return 0
    comparison = benchfile.compare(
        report,
        baseline,
        baseline_name=baseline_path.name,
        threshold=args.threshold,
    )
    print(comparison.render())
    if args.strict and comparison.verdict == benchfile.VERDICT_REGRESSION:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
