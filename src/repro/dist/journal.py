"""The coordinator's write-ahead cell journal.

Same discipline as :class:`repro.serve.journal.JobJournal` (both ride
the :class:`repro.serve.journal.WalFile` base): every cell transition
is one fsync'd JSON line, the durable record leads the in-memory
state, and a SIGKILL'd coordinator replays to exactly where it died —
sharded cells come back queued, leased cells come back interrupted
(their workers may still push, and fencing decides), terminal cells
keep their results verbatim.

Event vocabulary (``ev``): ``shard`` (a cell enters the pool, wire
form embedded), ``lease``, ``requeue``, ``done`` (the *exact* canonical
result string, so reassembly after replay is byte-identical to the
push), ``fail``.  :meth:`CellJournal.terminal_counts` is the chaos
campaign's exactly-once oracle, and size-triggered compaction (the
``shard`` + latest-transition rewrite) keeps lease churn from growing
the file without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.journal import WalFile, read_wal

__all__ = ["CellJournal", "CellReplay", "CellState"]

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"

TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED})


@dataclass
class CellState:
    """Everything the coordinator knows about one sharded cell."""

    key: str
    wire: Dict[str, Any]
    state: str = STATE_QUEUED
    attempts: int = 0
    #: The exact canonical result string a worker pushed (byte-identity
    #: is preserved through the journal, not re-derived from a parse).
    result_json: Optional[str] = None
    digest: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    #: Monotonic instant before which the cell must not be re-leased
    #: (expiry backoff).  Never persisted — a restarted coordinator
    #: re-leases immediately, exactly like the job dispatcher.
    not_before: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def public_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.digest is not None:
            out["digest"] = self.digest
        return out


@dataclass
class CellReplay:
    """What a cell-journal replay reconstructs."""

    cells: Dict[str, CellState] = field(default_factory=dict)
    terminal_counts: Dict[str, int] = field(default_factory=dict)
    #: Keys that were mid-lease when the journal ended; their leases
    #: died with the coordinator, so they re-queue (fencing protects
    #: against their original workers pushing late).
    interrupted: List[str] = field(default_factory=list)
    duplicate_shards: int = 0
    dropped_lines: int = 0


class CellJournal(WalFile):
    """Append-only, fsync'd JSONL record of every cell transition."""

    def __init__(self, path: str, max_bytes: Optional[int] = None):
        self.replayed = self._load(path)
        super().__init__(path, max_bytes=max_bytes)

    # -- replay --------------------------------------------------------

    @classmethod
    def _load(cls, path: str) -> CellReplay:
        state = CellReplay()
        stats: Dict[str, int] = {}
        for event in read_wal(path, label="cell journal", stats=stats):
            cls._apply(state, event)
        state.dropped_lines = stats.get("dropped", 0)
        for cell in state.cells.values():
            if cell.state == STATE_RUNNING:
                state.interrupted.append(cell.key)
        return state

    @staticmethod
    def _apply(state: CellReplay, event: Dict[str, Any]) -> None:
        kind = event.get("ev")
        if kind == "shard":
            key = event.get("key")
            if key is None:
                return
            if key in state.cells:
                # Re-sharding the same sweep across a coordinator
                # restart: content-derived keys make this the same cell.
                state.duplicate_shards += 1
                return
            state.cells[key] = CellState(key=key, wire=event.get("cell") or {})
            return
        cell = state.cells.get(event.get("key"))
        if cell is None:
            return  # transition orphaned by a torn shard line
        if kind == "lease":
            cell.state = STATE_RUNNING
            cell.attempts = int(event.get("attempt", cell.attempts + 1))
        elif kind == "requeue":
            cell.state = STATE_QUEUED
            cell.attempts = int(event.get("attempt", cell.attempts))
        elif kind == "done":
            cell.state = STATE_DONE
            cell.result_json = event.get("result")
            cell.digest = event.get("digest")
            cell.error = None
            state.terminal_counts[cell.key] = (
                state.terminal_counts.get(cell.key, 0) + 1
            )
        elif kind == "fail":
            cell.state = STATE_FAILED
            cell.error = {
                "type": event.get("error_type", "Error"),
                "message": event.get("error", ""),
                "attempts": event.get("attempts", cell.attempts),
            }
            state.terminal_counts[cell.key] = (
                state.terminal_counts.get(cell.key, 0) + 1
            )

    @classmethod
    def terminal_counts(cls, path: str) -> Dict[str, int]:
        """Terminal events per cell key (the exactly-once oracle)."""
        return cls._load(path).terminal_counts

    # -- compaction ----------------------------------------------------

    def live_events(self) -> List[Dict[str, Any]]:
        """One ``shard`` per cell plus its latest transition."""
        state = self._load(self.path)
        events: List[Dict[str, Any]] = []
        for key in sorted(state.cells):
            cell = state.cells[key]
            events.append({"ev": "shard", "key": key, "cell": cell.wire})
            if cell.state == STATE_DONE:
                events.append(
                    {
                        "ev": "done",
                        "key": key,
                        "result": cell.result_json,
                        "digest": cell.digest,
                    }
                )
            elif cell.state == STATE_FAILED:
                error = cell.error or {}
                events.append(
                    {
                        "ev": "fail",
                        "key": key,
                        "error_type": error.get("type", "Error"),
                        "error": error.get("message", ""),
                        "attempts": error.get("attempts", cell.attempts),
                    }
                )
            elif cell.state == STATE_RUNNING:
                events.append(
                    {
                        "ev": "lease",
                        "key": key,
                        "attempt": cell.attempts,
                        "expires_unix": 0.0,
                    }
                )
            elif cell.attempts:
                events.append(
                    {
                        "ev": "requeue",
                        "key": key,
                        "attempt": cell.attempts,
                        "reason": "compacted",
                        "delay_s": 0.0,
                    }
                )
        return events

    # -- appends -------------------------------------------------------

    def record_shard(self, key: str, wire: Dict[str, Any]) -> None:
        self.append({"ev": "shard", "key": key, "cell": wire})

    def record_lease(
        self, key: str, attempt: int, worker: str, expires_unix: float
    ) -> None:
        self.append(
            {
                "ev": "lease",
                "key": key,
                "attempt": attempt,
                "worker": worker,
                "expires_unix": expires_unix,
            }
        )

    def record_requeue(
        self, key: str, attempt: int, reason: str, delay_s: float = 0.0
    ) -> None:
        self.append(
            {
                "ev": "requeue",
                "key": key,
                "attempt": attempt,
                "reason": reason,
                "delay_s": round(delay_s, 6),
            }
        )

    def record_done(
        self, key: str, result_json: str, digest: str, worker: str
    ) -> None:
        self.append(
            {
                "ev": "done",
                "key": key,
                "result": result_json,
                "digest": digest,
                "worker": worker,
            }
        )

    def record_fail(
        self, key: str, error_type: str, message: str, attempts: int
    ) -> None:
        self.append(
            {
                "ev": "fail",
                "key": key,
                "error_type": error_type,
                "error": message,
                "attempts": attempts,
            }
        )

    def __enter__(self) -> "CellJournal":
        return self
