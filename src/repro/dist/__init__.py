"""Distributed sweep sharding: coordinator/worker over the serve substrate.

One host cannot hold the paper's full design space — configs ×
workloads × policies multiply into thousands of sweep cells — so
:mod:`repro.dist` shards a sweep across machines while keeping the
repo's byte-identity contract intact:

- the **coordinator** (:mod:`repro.dist.coordinator`, served through
  the ``repro.serve`` daemon's ``/dist/*`` routes) keys every cell by
  its canonical config-hash identity, leases cells to workers with
  ``(cell_key, attempt)`` fencing tokens, and journals every
  transition to a :class:`repro.dist.journal.CellJournal` — the same
  write-ahead discipline as the job journal, so a crashed coordinator
  replays to exactly where it died;
- **workers** (:mod:`repro.dist.worker`, ``python -m repro.harness
  worker``) pull leases over HTTP, execute cells through the existing
  :class:`repro.parallel.pool.SweepExecutor` (SupervisedPool +
  snapshots when ``--jobs`` > 1), heartbeat while running, and push
  results the coordinator verifies — fencing token, config hash,
  result digest — before folding into the shared
  :class:`repro.parallel.cache.ResultCache`;
- the **fault injector** (:mod:`repro.dist.faultnet`) wraps the
  worker↔coordinator channel with seeded connection refusals, torn
  bodies, delays, duplicated deliveries, and one-way partitions, so
  ``harness chaos --distributed`` can prove the reassembled sweep is
  byte-identical to a serial run with exactly one terminal state per
  cell.

Because a cell is a pure function of its config (fault seed embedded),
*where* it ran never shows in the result: reassembly is byte-identical
no matter which workers died, which pushes duplicated, or how many
attempts a cell took.
"""

from repro.dist.coordinator import DistCoordinator
from repro.dist.protocol import (
    cell_from_wire,
    cell_to_wire,
    result_digest,
)
from repro.dist.worker import DistWorker

__all__ = [
    "DistCoordinator",
    "DistWorker",
    "cell_from_wire",
    "cell_to_wire",
    "result_digest",
]
