"""``python -m repro.dist`` — the worker CLI (coordinator lives in serve).

The coordinator runs inside the ``repro.serve`` daemon (start it with
``python -m repro.serve --dist-journal PATH``); this entry point is the
worker side, identical to ``python -m repro.harness worker``.
"""

from repro.dist.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
