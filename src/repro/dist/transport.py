"""Worker↔coordinator transports: HTTP, in-process, and the raw seam.

A transport is anything with::

    request(method, path, payload) -> (status, body_dict)
    request_raw(method, path, body_bytes) -> (status, body_dict)

``request`` is what the worker calls; ``request_raw`` is the byte-level
seam underneath it — the fault injector
(:class:`repro.dist.faultnet.FaultyTransport`) serializes the payload
itself so it can truncate the bytes mid-flight, then delivers through
``request_raw``, which parses exactly like a real server would (a torn
body is a 400, never a half-parsed payload).

Network failure raises :class:`TransportError` (a
:class:`ConnectionError`): refusals, timeouts, resets, and injected
partitions all surface the same way, so worker retry logic has one
exception to reason about.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

__all__ = ["HttpTransport", "LocalTransport", "TransportError"]


class TransportError(ConnectionError):
    """The coordinator could not be reached (or the channel failed)."""


def _encode(payload: Optional[Dict[str, Any]]) -> Optional[bytes]:
    if payload is None:
        return None
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _decode(raw: bytes) -> Any:
    if not raw:
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


class HttpTransport:
    """Talks to a coordinator's ``/dist/*`` routes over urllib."""

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        return self.request_raw(method, path, _encode(payload))

    def request_raw(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Any]:
        url = self.base_url + path
        request = urllib.request.Request(
            url,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.status, _decode(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, _decode(exc.read())
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            OSError,
        ) as exc:
            raise TransportError(f"{method} {url}: {exc}") from None


class LocalTransport:
    """Direct in-process calls to a coordinator (tests and chaos).

    Round-trips every payload through JSON bytes so the in-process
    path exercises the same serialization the wire does — a payload
    that would not survive HTTP does not survive here either.
    """

    def __init__(self, coordinator: Any):
        self.coordinator = coordinator

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        return self.request_raw(method, path, _encode(payload))

    def request_raw(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Any]:
        if body is None:
            parsed: Any = None
        else:
            try:
                parsed = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # Exactly what the HTTP handler does with a torn body.
                return 400, {"error": "request body is not valid JSON"}
        return self.coordinator.handle(method, path, parsed)
