"""Seeded network fault injection for the worker↔coordinator channel.

:class:`FaultyTransport` wraps any transport and misbehaves on the way
through, drawing every decision from one seeded
:class:`random.Random` so a chaos campaign replays bit-for-bit:

- **refusals** — the connection never opens (``refuse``);
- **torn bodies** — the request bytes truncate mid-flight (``tear``);
  the far side sees invalid JSON and answers 400, the caller sees a
  normal (failed) response — exactly a half-written POST;
- **delays** — the request stalls before delivery (``delay`` /
  ``delay_s``);
- **duplicated deliveries** — the request arrives twice, the caller
  sees only the second response (``duplicate``) — a retransmit that
  was not actually lost;
- **lost responses** — the request *is* delivered and processed, but
  the response never comes back (``drop_response``); the caller
  retries and the far side sees a duplicate — the classic
  at-least-once double-push;
- **partitions** — :meth:`FaultyTransport.partition` scripts a total
  or one-way outage until :meth:`FaultyTransport.heal`; one-way means
  requests still arrive (and mutate coordinator state) while every
  response is lost, the worst case for fencing.

Faults compose: a delayed, duplicated, torn request is possible.  The
injected-fault counters (:attr:`FaultyTransport.injected`) let the
campaign assert the run actually exercised what it claims to.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Optional, Tuple

from repro.dist.transport import TransportError, _encode

__all__ = ["FaultSpec", "FaultyTransport"]


@dataclass(frozen=True)
class FaultSpec:
    """Per-request fault probabilities (all default off)."""

    refuse: float = 0.0
    tear: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.02
    drop_response: float = 0.0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """``"refuse=0.1,tear=0.05"`` → FaultSpec (CLI surface)."""
        values: Dict[str, float] = {}
        known = {f.name for f in fields(cls)}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec {part!r}; expected name=value"
                )
            name, _, raw = part.partition("=")
            name = name.strip()
            if name not in known:
                raise ValueError(
                    f"unknown fault {name!r}; one of {sorted(known)}"
                )
            values[name] = float(raw)
        return cls(**values)


class FaultyTransport:
    """A transport that injects seeded faults around an inner one."""

    def __init__(
        self,
        inner: Any,
        spec: FaultSpec,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.inner = inner
        self.spec = spec
        self.sleep = sleep
        self._rng = random.Random(seed)
        self._partitioned = False
        self._one_way = False
        #: fault name → times injected (campaign coverage assertions).
        self.injected: Dict[str, int] = {}

    # -- scripted partitions -------------------------------------------

    def partition(self, one_way: bool = False) -> None:
        """Cut the channel: total, or one-way (requests land, responses
        are lost) until :meth:`heal`."""
        self._partitioned = True
        self._one_way = one_way

    def heal(self) -> None:
        self._partitioned = False
        self._one_way = False

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    # -- the faulty path -----------------------------------------------

    def _hit(self, name: str, probability: float) -> bool:
        if probability <= 0.0:
            return False
        if self._rng.random() >= probability:
            return False
        self.injected[name] = self.injected.get(name, 0) + 1
        return True

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        return self.request_raw(method, path, _encode(payload))

    def request_raw(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Any]:
        if self._partitioned and not self._one_way:
            self.injected["partition"] = self.injected.get("partition", 0) + 1
            raise TransportError(f"{method} {path}: partitioned (injected)")
        if self._hit("refuse", self.spec.refuse):
            raise TransportError(
                f"{method} {path}: connection refused (injected)"
            )
        if self._hit("delay", self.spec.delay):
            self.sleep(self.spec.delay_s)
        send = body
        if body is not None and self._hit("tear", self.spec.tear):
            # Truncate somewhere strictly inside the body: the far
            # side must see invalid JSON, not an empty no-op.
            send = body[: self._rng.randrange(1, len(body))]
        if send is not None and send == body and self._hit(
            "duplicate", self.spec.duplicate
        ):
            # First delivery processed, its response discarded.
            self.inner.request_raw(method, path, send)
        status, response = self.inner.request_raw(method, path, send)
        if self._partitioned and self._one_way:
            self.injected["partition_oneway"] = (
                self.injected.get("partition_oneway", 0) + 1
            )
            raise TransportError(
                f"{method} {path}: response lost to one-way partition "
                "(injected)"
            )
        if self._hit("drop_response", self.spec.drop_response):
            raise TransportError(
                f"{method} {path}: response lost (injected)"
            )
        return status, response
