"""The distributed sweep worker: lease, execute, heartbeat, push.

A worker is a pull loop against one coordinator: lease a cell, rebuild
it from the wire, run it through the existing execution machinery
(:class:`repro.parallel.pool.SweepExecutor` — SupervisedPool and
mid-cell snapshots when ``jobs`` > 1, the serial path otherwise),
heartbeat while it runs, then push the result with its fencing token,
config hash, and digest.

Failure posture (the whole point):

- an unreachable coordinator is *normal* — every call retries through
  the shared decorrelated-jitter backoff, and the loop keeps polling;
- a fenced heartbeat means the coordinator presumed this worker dead
  and re-leased the cell: the worker abandons the cell (its late push
  would be discarded anyway) and moves on;
- a push whose response was lost is re-pushed — the coordinator's
  verification pipeline makes the duplicate harmless;
- a structured simulation failure is reported as ``/dist/fail`` so the
  coordinator can budget retries; the worker itself survives.

``python -m repro.harness worker --coordinator URL`` is the CLI face;
``--faults``/``--fault-seed`` wrap the channel in the seeded injector
(:mod:`repro.dist.faultnet`) for chaos campaigns.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import config_hash
from repro.core.results import SimulationResult
from repro.dist.protocol import cell_from_wire, result_digest
from repro.dist.transport import HttpTransport, TransportError
from repro.obs import log as _log
from repro.parallel.backoff import Backoff
from repro.parallel.cells import Cell, error_payload
from repro.faults.errors import SimulationError

__all__ = ["DistWorker", "main"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class DistWorker:
    """One pull-loop worker against one coordinator transport."""

    def __init__(
        self,
        transport: Any,
        worker_id: Optional[str] = None,
        jobs: int = 1,
        retries: int = 1,
        timeout: Optional[float] = None,
        poll_s: float = 0.5,
        push_retries: int = 8,
        run_cell: Optional[Callable[[Cell], SimulationResult]] = None,
        backoff_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.transport = transport
        self.worker_id = worker_id or default_worker_id()
        self.jobs = max(1, jobs)
        self.retries = retries
        self.timeout = timeout
        self.poll_s = poll_s
        self.push_retries = push_retries
        self.run_cell = run_cell or self._run_cell
        self.sleep = sleep
        #: Backoff for an unreachable coordinator (lease path).
        self._idle_backoff = Backoff(seed=backoff_seed)
        self.log = _log.get_logger("dist.worker", worker=self.worker_id)
        self.stop = threading.Event()
        # Outcome counters (tests and the CLI exit summary read these).
        self.cells_done = 0
        self.cells_failed = 0
        self.cells_abandoned = 0
        self.pushes_lost = 0

    # -- execution ------------------------------------------------------

    def _run_cell(self, cell: Cell) -> SimulationResult:
        """Default executor: the same pipeline local sweeps use."""
        from repro.parallel.pool import SweepExecutor

        executor = SweepExecutor(
            jobs=self.jobs, retries=self.retries, timeout=self.timeout
        )
        return executor.run([cell])[0]

    # -- heartbeats ------------------------------------------------------

    def _heartbeat_loop(
        self,
        key: str,
        attempt: int,
        interval_s: float,
        fenced: threading.Event,
        done: threading.Event,
    ) -> None:
        while not done.wait(interval_s):
            try:
                status, body = self.transport.request(
                    "POST",
                    "/dist/heartbeat",
                    {"worker": self.worker_id, "key": key,
                     "attempt": attempt},
                )
            except TransportError:
                # A missed heartbeat is survivable as long as one lands
                # within the TTL; keep trying until the cell finishes.
                continue
            if status == 200 and isinstance(body, dict) and not body.get("ok"):
                fenced.set()
                return

    # -- the loop --------------------------------------------------------

    def step(self) -> str:
        """One iteration: ``"ran"``, ``"idle"``, or ``"unreachable"``."""
        try:
            status, body = self.transport.request(
                "POST", "/dist/lease", {"worker": self.worker_id}
            )
        except TransportError as exc:
            delay = self._idle_backoff.next()
            if _log.ENABLED:
                self.log.warning(
                    "worker_coordinator_unreachable",
                    error=str(exc),
                    retry_in_s=round(delay, 3),
                )
            self.sleep(delay)
            return "unreachable"
        self._idle_backoff.reset()
        lease = body.get("lease") if isinstance(body, dict) else None
        if status != 200 or lease is None:
            self.sleep(self.poll_s)
            return "idle"

        key = lease["key"]
        attempt = int(lease["attempt"])
        ttl_s = float(lease.get("ttl_s", 30.0))
        cell = cell_from_wire(lease["cell"])
        if _log.ENABLED:
            self.log.info("worker_lease", cell=key, attempt=attempt)

        fenced = threading.Event()
        finished = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(key, attempt, max(0.05, ttl_s / 3.0), fenced, finished),
            daemon=True,
        )
        beat.start()
        try:
            try:
                result = self.run_cell(cell)
            except SimulationError as exc:
                self._push_fail(key, attempt, cell, exc)
                self.cells_failed += 1
                return "ran"
            except Exception as exc:  # noqa: BLE001 — survive anything
                self._push_fail(key, attempt, cell, exc)
                self.cells_failed += 1
                return "ran"
        finally:
            finished.set()
            beat.join(timeout=2.0)

        if fenced.is_set():
            # The coordinator re-leased this cell to someone else; a
            # push would be discarded, so do not bother.
            self.cells_abandoned += 1
            if _log.ENABLED:
                self.log.warning("worker_fenced", cell=key, attempt=attempt)
            return "ran"
        self._push_complete(key, attempt, cell, result)
        return "ran"

    def _push(self, path: str, payload: Dict[str, Any]) -> Optional[Dict]:
        """Deliver a push, retrying through backoff; None if lost."""
        backoff = Backoff(seed=sum(payload.get("key", "").encode()) or 1)
        for _ in range(self.push_retries):
            try:
                status, body = self.transport.request("POST", path, payload)
            except TransportError:
                self.sleep(backoff.next())
                continue
            if (
                status == 400
                and isinstance(body, dict)
                and body.get("retry")
            ):
                # The body tore in flight (digest mismatch server-side);
                # we still hold the true bytes — send them again.
                self.sleep(backoff.next())
                continue
            return body if isinstance(body, dict) else {}
        self.pushes_lost += 1
        if _log.ENABLED:
            self.log.error(
                "worker_push_lost", path=path, cell=payload.get("key")
            )
        return None

    def _push_complete(
        self, key: str, attempt: int, cell: Cell, result: SimulationResult
    ) -> None:
        result_json = result.canonical_json()
        body = self._push(
            "/dist/complete",
            {
                "worker": self.worker_id,
                "key": key,
                "attempt": attempt,
                "config_hash": config_hash(cell.config),
                "digest": result_digest(result_json),
                "result": result_json,
            },
        )
        if body is not None and body.get("accepted"):
            self.cells_done += 1
            if _log.ENABLED:
                self.log.info("worker_complete", cell=key, attempt=attempt)
        else:
            self.cells_abandoned += 1
            if _log.ENABLED:
                self.log.warning(
                    "worker_push_discarded",
                    cell=key,
                    attempt=attempt,
                    reason=(body or {}).get("reason", "lost"),
                )

    def _push_fail(
        self, key: str, attempt: int, cell: Cell, exc: Exception
    ) -> None:
        if isinstance(exc, SimulationError):
            error_type, message, diagnostics, _ = error_payload(
                exc, cell, self.retries
            )
        else:
            error_type, message = type(exc).__name__, str(exc)
            diagnostics = {"cell_key": key}
        if _log.ENABLED:
            self.log.error(
                "worker_cell_error",
                cell=key,
                attempt=attempt,
                error_type=error_type,
            )
        self._push(
            "/dist/fail",
            {
                "worker": self.worker_id,
                "key": key,
                "attempt": attempt,
                "error_type": error_type,
                "error": message,
                "diagnostics": diagnostics,
            },
        )

    def run(
        self,
        max_cells: Optional[int] = None,
        idle_exit_s: Optional[float] = None,
    ) -> int:
        """Pull until stopped; returns the number of cells completed.

        ``max_cells`` bounds work (tests); ``idle_exit_s`` exits after
        that long without running a cell — how the walkthrough's
        workers drain and quit.  An unreachable coordinator does *not*
        reset the drain timer: on a flaky channel (the chaos campaign's
        injected refusals) a worker out of work would otherwise never
        accumulate enough contiguous idle time to exit.
        """
        idle_since: Optional[float] = None
        while not self.stop.is_set():
            if max_cells is not None and (
                self.cells_done + self.cells_failed >= max_cells
            ):
                break
            outcome = self.step()
            if outcome == "ran":
                idle_since = None
            elif idle_exit_s is not None:
                if idle_since is None:
                    idle_since = time.monotonic()
                elif time.monotonic() - idle_since >= idle_exit_s:
                    break
        return self.cells_done


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness worker",
        description="Pull and execute sweep cells from a dist coordinator.",
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        help="coordinator base URL (a repro.serve daemon with /dist routes)",
    )
    parser.add_argument(
        "--id",
        default=None,
        help="worker id (default: hostname-pid)",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--retries", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--poll", type=float, default=0.5, metavar="S")
    parser.add_argument(
        "--max-cells", type=int, default=None,
        help="exit after this many terminal cells",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None, metavar="S",
        help="exit after this long with no work (drain mode)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject seeded channel faults, e.g. "
        "'refuse=0.1,tear=0.05,drop_response=0.1'",
    )
    parser.add_argument("--fault-seed", type=int, default=0)
    args = parser.parse_args(argv)

    _log.configure_from_env()
    transport: Any = HttpTransport(args.coordinator)
    if args.faults:
        from repro.dist.faultnet import FaultSpec, FaultyTransport

        transport = FaultyTransport(
            transport, FaultSpec.parse(args.faults), seed=args.fault_seed
        )
    worker = DistWorker(
        transport,
        worker_id=args.id,
        jobs=args.jobs,
        retries=args.retries,
        timeout=args.timeout,
        poll_s=args.poll,
    )
    try:
        done = worker.run(
            max_cells=args.max_cells, idle_exit_s=args.idle_exit
        )
    except KeyboardInterrupt:
        done = worker.cells_done
    print(
        f"worker {worker.worker_id}: {done} done, "
        f"{worker.cells_failed} failed, "
        f"{worker.cells_abandoned} abandoned"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
