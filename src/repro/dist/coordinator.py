"""The sweep coordinator: shard, lease, verify, reassemble.

The coordinator is a journaled state machine over sweep cells, HTTP
left to its host (the ``repro.serve`` daemon splices ``/dist/*`` into
its handler; in-process tests call :meth:`DistCoordinator.handle`
directly).  The lifecycle of one cell:

1. **shard** — :meth:`submit_cells` keys the cell by its canonical
   config-hash identity (:func:`repro.parallel.cells.key_of`) and
   journals its wire form; duplicate submissions collapse.
2. **lease** — a worker's poll grants ``(cell_key, attempt)`` through
   the same :class:`repro.serve.leases.LeaseTable` fencing the job
   dispatcher uses, attempt incremented per grant.
3. **heartbeat** — renews the lease while the worker executes; a
   fenced heartbeat tells the worker to abandon the cell.
4. **complete/fail** — the push runs a verification pipeline before
   anything is journaled: known key → result digest (recomputed over
   the exact pushed string) → config hash → fencing token.  Stale and
   duplicate pushes are discarded and counted
   (``dist_stale_results_total``), corrupt ones rejected and counted
   (``dist_rejected_results_total``); only a verified push folds into
   the shared :class:`repro.parallel.cache.ResultCache` and reaches
   the journal.
5. **expiry** — :meth:`maintain` (called from the daemon's monitor
   tick) re-queues cells whose leases lapsed, under the shared
   decorrelated-jitter backoff and the cell's bounded attempt budget;
   a cell that exhausts the budget fails *structurally* (typed error,
   attempts attached) without sinking the sweep.

Reassembly (:meth:`assemble`) returns results in submission order,
parsed from the exact strings workers pushed — byte-identical to a
serial run because cells are pure functions of their configs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.dist.journal import (
    CellJournal,
    CellState,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
)
from repro.dist.protocol import (
    ProtocolError,
    cell_from_wire,
    cell_to_wire,
    result_digest,
    wire_config_hash,
)
from repro.obs import log as _log
from repro.parallel.cache import ResultCache
from repro.parallel.cells import Cell, key_of, rebuild_error
from repro.prof.registry import MetricsRegistry, REGISTRY
from repro.serve.leases import LeaseTable

__all__ = ["DistCoordinator"]

#: Push dispositions :meth:`DistCoordinator.complete` can return.
ACCEPTED = "accepted"


class DistCoordinator:
    """Shards a sweep into leased cells and reassembles verified results.

    Parameters
    ----------
    journal_path:
        The cell journal (WAL) file; replayed on construction, so a
        restarted coordinator resumes exactly where it died.
    cache:
        Shared result cache verified pushes fold into (optional).
    lease_ttl:
        Seconds a worker owns a cell between heartbeats before the
        coordinator presumes it dead and re-queues.
    max_attempts:
        Lease grants per cell before it fails structurally.
    worker_ttl:
        Seconds since last contact before a worker stops counting as
        live (default ``2 * lease_ttl``).
    clock:
        Injectable monotonic clock (chaos tests advance a fake one).
    """

    def __init__(
        self,
        journal_path: str,
        cache: Optional[ResultCache] = None,
        registry: Optional[MetricsRegistry] = None,
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        worker_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        backoff_seed: int = 0,
        journal_max_bytes: Optional[int] = None,
    ):
        self.lock = threading.RLock()
        self.cache = cache
        self.registry = registry if registry is not None else REGISTRY
        self.max_attempts = max_attempts
        self.worker_ttl = worker_ttl if worker_ttl is not None else 2 * lease_ttl
        self.clock = clock
        self.leases = LeaseTable(
            ttl=lease_ttl, clock=clock, backoff_seed=backoff_seed
        )
        self.journal = CellJournal(journal_path, max_bytes=journal_max_bytes)
        self.log = _log.get_logger("dist.coordinator")
        #: worker id → monotonic last-contact instant.
        self._workers: Dict[str, float] = {}
        self._cells: Dict[str, CellState] = self.journal.replayed.cells
        #: Submission order — assemble() without explicit keys uses it.
        self._order: List[str] = list(self._cells)
        # Cells mid-lease when the previous coordinator died: their
        # leases died with it, so they re-queue (fencing discards any
        # late push from their original workers).
        for key in self.journal.replayed.interrupted:
            cell = self._cells[key]
            cell.state = STATE_QUEUED
            self.journal.record_requeue(
                key, cell.attempts, reason="coordinator-restart"
            )
            if _log.ENABLED:
                self.log.warning(
                    "dist_cell_interrupted", cell=key, attempt=cell.attempts
                )

    # -- metric shorthands ---------------------------------------------

    def _count(self, name: str, help: str, **labels: str) -> None:
        self.registry.counter(name, help=help).inc(1, **labels)

    def _stale(self, reason: str, key: str, attempt: int) -> Dict[str, Any]:
        self._count(
            "dist_stale_results_total",
            "pushes discarded by lease fencing",
            reason=reason,
        )
        if _log.ENABLED:
            self.log.warning(
                "dist_stale_result", cell=key, attempt=attempt, reason=reason
            )
        return {"accepted": False, "reason": reason, "retry": False}

    def _rejected(
        self, reason: str, key: str, retry: bool
    ) -> Dict[str, Any]:
        self._count(
            "dist_rejected_results_total",
            "pushes that failed verification",
            reason=reason,
        )
        if _log.ENABLED:
            self.log.warning("dist_rejected_result", cell=key, reason=reason)
        return {"accepted": False, "reason": reason, "retry": retry}

    def _update_cell_gauges(self) -> None:
        counts = {s: 0 for s in (STATE_QUEUED, STATE_RUNNING, STATE_DONE,
                                 STATE_FAILED)}
        for cell in self._cells.values():
            counts[cell.state] = counts.get(cell.state, 0) + 1
        gauge = self.registry.gauge(
            "dist_cells", "sharded cells by state"
        )
        for state, count in counts.items():
            gauge.set(count, state=state)

    # -- sharding ------------------------------------------------------

    def submit_cells(self, cells: Sequence[Cell]) -> List[str]:
        """Shard ``cells`` into the pool; returns their keys in order.

        Content-derived keys make submission idempotent: a driver
        re-submitting the same sweep after a coordinator restart (or a
        retried POST) maps onto the existing cells, results intact.
        """
        keys: List[str] = []
        with self.lock:
            for cell in cells:
                key = key_of(cell)
                keys.append(key)
                if key in self._cells:
                    continue
                wire = cell_to_wire(cell)
                self.journal.record_shard(key, wire)
                self._cells[key] = CellState(key=key, wire=wire)
                self._order.append(key)
                if _log.ENABLED:
                    self.log.info("dist_shard", cell=key)
            self._update_cell_gauges()
        return keys

    # -- worker-facing API ---------------------------------------------

    def _touch_worker(self, worker: str) -> None:
        if worker not in self._workers and _log.ENABLED:
            self.log.info("dist_worker_seen", worker=worker)
        self._workers[worker] = self.clock()

    def lease(self, worker: str) -> Optional[Dict[str, Any]]:
        """Grant the next runnable cell to ``worker`` (None = idle)."""
        with self.lock:
            self._touch_worker(worker)
            self._expire()
            now = self.clock()
            for key in self._order:
                cell = self._cells[key]
                if cell.state != STATE_QUEUED or cell.not_before > now:
                    continue
                attempt = cell.attempts + 1
                grant = self.leases.grant(key, attempt, owner=worker)
                cell.state = STATE_RUNNING
                cell.attempts = attempt
                self.journal.record_lease(
                    key, attempt, worker, expires_unix=time.time()
                    + self.leases.ttl
                )
                self._count(
                    "dist_leases_granted_total", "cell leases granted"
                )
                self._update_cell_gauges()
                if _log.ENABLED:
                    self.log.info(
                        "dist_lease", cell=key, attempt=attempt, worker=worker
                    )
                return {
                    "key": key,
                    "attempt": attempt,
                    "cell": cell.wire,
                    "ttl_s": self.leases.ttl,
                    "expires_at": grant.expires_at,
                }
            return None

    def heartbeat(self, worker: str, key: str, attempt: int) -> bool:
        """Renew ``worker``'s lease; False means it was fenced off."""
        with self.lock:
            self._touch_worker(worker)
            self._count("dist_heartbeats_total", "worker heartbeats")
            cell = self._cells.get(key)
            if cell is None or cell.terminal:
                return False
            live = self.leases.current(key)
            if live is None or live.attempt != attempt:
                if _log.ENABLED:
                    self.log.warning(
                        "dist_heartbeat_fenced",
                        cell=key,
                        attempt=attempt,
                        worker=worker,
                    )
                return False
            return self.leases.renew(live) is not None

    def complete(
        self,
        worker: str,
        key: str,
        attempt: int,
        result_json: Any,
        digest: Any,
        config_hash_claim: Any = None,
    ) -> Dict[str, Any]:
        """Verify and fold one pushed result.

        Returns ``{"accepted": bool, "reason": ..., "retry": bool}``;
        ``retry`` True marks transport-level corruption (torn body) the
        worker should re-push, False marks a push that must be
        abandoned (fenced, duplicate, or semantically wrong).  Raises
        :class:`ProtocolError` for payloads malformed beyond reasoning.
        """
        if not isinstance(result_json, str) or not isinstance(digest, str):
            raise ProtocolError(
                "complete push needs string 'result' and 'digest' fields"
            )
        with self.lock:
            self._touch_worker(worker)
            cell = self._cells.get(key)
            if cell is None:
                return self._rejected("unknown", key, retry=False)
            # Digest first: a mismatch means the body tore in flight —
            # nothing else in the payload can be trusted, and the
            # worker still holds the true bytes, so ask for a re-push.
            if result_digest(result_json) != digest:
                return self._rejected("digest", key, retry=True)
            if config_hash_claim is not None:
                if wire_config_hash(cell.wire) != config_hash_claim:
                    return self._rejected("config_hash", key, retry=False)
            # Fencing: exactly one push per cell ever passes this gate.
            if cell.terminal:
                return self._stale("duplicate", key, attempt)
            live = self.leases.current(key)
            if live is None or live.attempt != attempt:
                return self._stale("fenced", key, attempt)
            try:
                result = SimulationResult.from_json(result_json)
            except (ValueError, KeyError, TypeError):
                return self._rejected("malformed", key, retry=True)
            self.leases.release(live)
            self.journal.record_done(key, result_json, digest, worker)
            cell.state = STATE_DONE
            cell.result_json = result_json
            cell.digest = digest
            cell.error = None
            if self.cache is not None:
                self.cache.put(cell_from_wire(cell.wire), result)
            self._count("dist_results_total", "verified cell results")
            self._update_cell_gauges()
            if _log.ENABLED:
                self.log.info(
                    "dist_complete", cell=key, attempt=attempt, worker=worker
                )
            return {"accepted": True, "reason": ACCEPTED, "retry": False}

    def fail(
        self,
        worker: str,
        key: str,
        attempt: int,
        error_type: str,
        message: str,
        diagnostics: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Fold one structured worker-side failure (fenced like a push)."""
        with self.lock:
            self._touch_worker(worker)
            cell = self._cells.get(key)
            if cell is None:
                return self._rejected("unknown", key, retry=False)
            if cell.terminal:
                return self._stale("duplicate", key, attempt)
            live = self.leases.current(key)
            if live is None or live.attempt != attempt:
                return self._stale("fenced", key, attempt)
            self.leases.release(live)
            self._requeue_or_fail(
                cell, reason="worker-error",
                error=(str(error_type), str(message), diagnostics or {}),
            )
            self._update_cell_gauges()
            return {"accepted": True, "reason": "recorded", "retry": False}

    # -- expiry / maintenance ------------------------------------------

    def _requeue_or_fail(
        self,
        cell: CellState,
        reason: str,
        error: Optional[Tuple[str, str, Dict[str, Any]]] = None,
    ) -> None:
        """Budgeted retry: re-queue under backoff or fail structurally."""
        if cell.attempts >= self.max_attempts:
            error_type, message, diagnostics = error or (
                "CellTimeout",
                f"lease expired {cell.attempts} times "
                f"(workers died or wedged)",
                {},
            )
            diagnostics = dict(diagnostics)
            diagnostics.setdefault("cell_key", cell.key)
            diagnostics["attempts"] = cell.attempts
            cell.state = STATE_FAILED
            cell.error = {
                "type": error_type,
                "message": message,
                "attempts": cell.attempts,
                "diagnostics": diagnostics,
            }
            self.journal.record_fail(
                cell.key, error_type, message, cell.attempts
            )
            self._count(
                "dist_cells_failed_total",
                "cells that exhausted their attempt budget",
            )
            if _log.ENABLED:
                self.log.error(
                    "dist_cell_failed",
                    cell=cell.key,
                    error_type=error_type,
                    attempts=cell.attempts,
                )
            return
        delay = self.leases.requeue_delay(cell.key)
        cell.state = STATE_QUEUED
        cell.not_before = self.clock() + delay
        self.journal.record_requeue(
            cell.key, cell.attempts, reason=reason, delay_s=delay
        )
        if _log.ENABLED:
            self.log.warning(
                "dist_requeue",
                cell=cell.key,
                attempt=cell.attempts,
                reason=reason,
                delay_s=round(delay, 3),
            )

    def _expire(self) -> None:
        """Re-queue cells whose leases lapsed (caller holds the lock)."""
        for lease in self.leases.expired():
            self.leases.revoke(lease.job_id)
            cell = self._cells.get(lease.job_id)
            self._count(
                "dist_lease_expirations_total",
                "leases that lapsed without a push",
            )
            if _log.ENABLED:
                self.log.warning(
                    "dist_lease_expired",
                    cell=lease.job_id,
                    attempt=lease.attempt,
                    worker=lease.owner or "-",
                )
            if cell is not None and not cell.terminal:
                self._requeue_or_fail(cell, reason="lease-expired")
        live = sum(
            1
            for seen in self._workers.values()
            if self.clock() - seen <= self.worker_ttl
        )
        self.registry.gauge(
            "dist_workers_live", "workers seen within worker_ttl"
        ).set(live)

    def maintain(self) -> None:
        """Periodic upkeep (the serve daemon calls this from its tick)."""
        with self.lock:
            self._expire()
            self._update_cell_gauges()

    # -- driver-facing API ---------------------------------------------

    def live_workers(self) -> int:
        with self.lock:
            now = self.clock()
            return sum(
                1
                for seen in self._workers.values()
                if now - seen <= self.worker_ttl
            )

    def counts(self) -> Dict[str, int]:
        with self.lock:
            out = {s: 0 for s in (STATE_QUEUED, STATE_RUNNING, STATE_DONE,
                                  STATE_FAILED)}
            for cell in self._cells.values():
                out[cell.state] = out.get(cell.state, 0) + 1
            return out

    def all_terminal(self) -> bool:
        with self.lock:
            return bool(self._cells) and all(
                cell.terminal for cell in self._cells.values()
            )

    def status(self) -> Dict[str, Any]:
        """The ``GET /dist/status`` body (fleet + cell summary)."""
        with self.lock:
            self._expire()
            now = self.clock()
            workers = {
                worker: {
                    "age_s": round(now - seen, 3),
                    "live": now - seen <= self.worker_ttl,
                }
                for worker, seen in sorted(self._workers.items())
            }
            return {
                "cells": self.counts(),
                "workers": workers,
                "workers_live": sum(
                    1 for w in workers.values() if w["live"]
                ),
                "leases": [
                    {
                        "key": lease.job_id,
                        "attempt": lease.attempt,
                        "owner": lease.owner,
                        "expires_in_s": round(lease.expires_at - now, 3),
                    }
                    for lease in self.leases.live_leases()
                ],
                "lease_ttl_s": self.leases.ttl,
                "max_attempts": self.max_attempts,
            }

    def cell_states(self) -> List[Dict[str, Any]]:
        with self.lock:
            return [
                self._cells[key].public_dict() for key in self._order
            ]

    def result_strings(
        self, keys: Optional[Sequence[str]] = None
    ) -> List[Optional[str]]:
        """The exact canonical result strings, in submission order.

        Byte-identity assertions compare these against
        ``SimulationResult.canonical_json()`` of a serial run.
        """
        with self.lock:
            chosen = list(keys) if keys is not None else list(self._order)
            return [
                self._cells[key].result_json if key in self._cells else None
                for key in chosen
            ]

    def assemble(
        self, keys: Optional[Sequence[str]] = None
    ) -> List[SimulationResult]:
        """Reassemble the sweep in submission order.

        Every cell must be terminal; the earliest failed cell (in the
        requested order) raises its reconstructed structured error —
        the same earliest-failure semantics the in-process pool uses.
        """
        with self.lock:
            chosen = list(keys) if keys is not None else list(self._order)
            for key in chosen:
                cell = self._cells.get(key)
                if cell is None:
                    raise KeyError(f"unknown cell {key!r}")
                if not cell.terminal:
                    raise RuntimeError(
                        f"cell {key!r} is still {cell.state!r}; "
                        "assemble() needs every cell terminal"
                    )
            for key in chosen:
                cell = self._cells[key]
                if cell.state == STATE_FAILED:
                    error = cell.error or {}
                    diagnostics = dict(error.get("diagnostics") or {})
                    diagnostics.setdefault("cell_key", key)
                    diagnostics.setdefault(
                        "attempts", error.get("attempts", cell.attempts)
                    )
                    raise rebuild_error(
                        error.get("type", "SimulationError"),
                        error.get("message", "distributed cell failed"),
                        diagnostics,
                    )
            return [
                SimulationResult.from_json(self._cells[key].result_json)
                for key in chosen
            ]

    # -- HTTP splice ----------------------------------------------------

    def handle(
        self, method: str, path: str, body: Any
    ) -> Tuple[int, Dict[str, Any]]:
        """Route one ``/dist/*`` request; returns ``(status, body)``.

        The serve daemon's handler delegates here; the in-process
        ``LocalTransport`` calls it directly.  Worker-identifying
        fields are required on every POST.
        """
        if method == "GET" and path == "/dist/status":
            return 200, self.status()
        if method == "GET" and path == "/dist/cells":
            return 200, {"cells": self.cell_states()}
        if method != "POST":
            return 404, {"error": f"no such dist route {path!r}"}
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}

        def _str(field: str) -> str:
            value = body.get(field)
            if not isinstance(value, str) or not value:
                raise ProtocolError(
                    f"field {field!r} must be a non-empty string"
                )
            return value

        def _int(field: str) -> int:
            value = body.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(f"field {field!r} must be an integer")
            return value

        try:
            if path == "/dist/shard":
                wires = body.get("cells")
                if not isinstance(wires, list) or not wires:
                    raise ProtocolError(
                        "'cells' must be a non-empty list of wire cells"
                    )
                cells = [cell_from_wire(wire) for wire in wires]
                return 200, {"keys": self.submit_cells(cells)}
            if path == "/dist/assemble":
                keys = body.get("keys")
                if keys is not None and not isinstance(keys, list):
                    raise ProtocolError("'keys' must be a list of cell keys")
                with self.lock:
                    chosen = (
                        [str(k) for k in keys]
                        if keys is not None
                        else list(self._order)
                    )
                    rows = []
                    for key in chosen:
                        cell = self._cells.get(key)
                        if cell is None:
                            raise ProtocolError(f"unknown cell {key!r}")
                        rows.append(
                            {
                                "key": key,
                                "state": cell.state,
                                "result": cell.result_json,
                                "error": cell.error,
                            }
                        )
                    return 200, {
                        "complete": all(
                            row["state"] in ("done", "failed")
                            for row in rows
                        ),
                        "cells": rows,
                    }
            if path == "/dist/lease":
                grant = self.lease(_str("worker"))
                return 200, {"lease": grant}
            if path == "/dist/heartbeat":
                ok = self.heartbeat(
                    _str("worker"), _str("key"), _int("attempt")
                )
                return 200, {"ok": ok}
            if path == "/dist/complete":
                outcome = self.complete(
                    _str("worker"),
                    _str("key"),
                    _int("attempt"),
                    body.get("result"),
                    body.get("digest"),
                    body.get("config_hash"),
                )
                status = 400 if outcome.get("retry") else 200
                return status, outcome
            if path == "/dist/fail":
                diagnostics = body.get("diagnostics")
                outcome = self.fail(
                    _str("worker"),
                    _str("key"),
                    _int("attempt"),
                    _str("error_type"),
                    str(body.get("error", "")),
                    diagnostics if isinstance(diagnostics, dict) else None,
                )
                return 200, outcome
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        return 404, {"error": f"no such dist route {path!r}"}

    def close(self) -> None:
        self.journal.close()
