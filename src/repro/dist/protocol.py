"""The coordinator/worker wire format and its verification primitives.

Everything that crosses the worker↔coordinator channel is JSON built
from three canonical forms the repo already trusts:

- a **cell** travels as its canonical config JSON plus the sweep-point
  fields (:func:`cell_to_wire` / :func:`cell_from_wire`) — the same
  representation :func:`repro.core.config.canonical_config_json`
  journals for jobs, so a cell rebuilt on a worker hashes to the same
  :func:`repro.harness.checkpoint.cell_key` the coordinator leased;
- a **result** travels as the exact ``canonical_json()`` string of the
  :class:`repro.core.results.SimulationResult` — a *string field*, not
  re-encoded JSON, so the bytes the worker hashed are the bytes the
  coordinator verifies and journals (byte-identity survives transport);
- a **digest** (:func:`result_digest`) is the SHA-256 of that string,
  computed worker-side before the push and recomputed coordinator-side
  after — a torn or truncated HTTP body cannot be mistaken for a
  result.

The fencing token is the pair ``(cell_key, attempt)``: the coordinator
only accepts a push whose attempt matches the cell's live lease, which
is what makes duplicated completions, partitioned-then-healed workers,
and SIGKILL-resurrection races all collapse to "discarded and counted".
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.core.config import (
    canonical_config_json,
    config_from_dict,
    config_hash,
)
from repro.parallel.cells import Cell

__all__ = [
    "ProtocolError",
    "cell_from_wire",
    "cell_to_wire",
    "result_digest",
    "wire_config_hash",
]


class ProtocolError(ValueError):
    """A malformed or inconsistent wire payload (an HTTP 400)."""


def cell_to_wire(cell: Cell) -> Dict[str, Any]:
    """The JSON form of one sweep cell, canonical-config embedded."""
    return {
        "label": cell.label,
        "workload": cell.workload,
        "config": json.loads(canonical_config_json(cell.config)),
        "form": cell.form,
        "miss_scale": cell.miss_scale,
    }


def cell_from_wire(data: Any) -> Cell:
    """Rebuild a :class:`Cell` from its wire form (validating it)."""
    if not isinstance(data, dict):
        raise ProtocolError(
            f"cell payload must be an object, got {type(data).__name__}"
        )
    missing = {"label", "workload", "config"} - set(data)
    if missing:
        raise ProtocolError(f"cell payload missing keys {sorted(missing)}")
    config = data["config"]
    if not isinstance(config, dict):
        raise ProtocolError("cell 'config' must be a canonical config object")
    try:
        built = config_from_dict(config)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad cell config: {exc}") from exc
    miss_scale = data.get("miss_scale", 1.0)
    if not isinstance(miss_scale, (int, float)) or miss_scale <= 0:
        raise ProtocolError("cell 'miss_scale' must be a positive number")
    form = data.get("form")
    if form not in (None, "linear", "blocks"):
        raise ProtocolError("cell 'form' must be null, 'linear', or 'blocks'")
    return Cell(
        label=str(data["label"]),
        workload=str(data["workload"]),
        config=built,
        form=form,
        miss_scale=float(miss_scale),
    )


def wire_config_hash(data: Dict[str, Any]) -> str:
    """The canonical config hash of a wire cell (coordinator-side check)."""
    return config_hash(config_from_dict(data["config"]))


def result_digest(result_json: str) -> str:
    """SHA-256 over the exact canonical result string a worker pushes."""
    return "sha256:" + hashlib.sha256(
        result_json.encode("utf-8")
    ).hexdigest()
