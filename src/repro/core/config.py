"""Machine configuration dataclasses.

Defaults reproduce the paper's methodology (Section 5.2): 32-thread
warps, 48 warps per shader core, 32 KB L1 data caches with 128-byte
lines, 8 memory channels with 128 KB of unified L2 per channel, and a
128-entry per-core TLB with one hardware page table walker.

The paper simulates 30 SIMT cores; this reproduction simulates a
configurable subset (default 4) with statistically identical per-core
workloads — every reported metric is either per-core or a ratio against
a no-TLB baseline of the same core count, so the shape of the results is
insensitive to the core count (and the benchmarks run in seconds rather
than hours of pure-Python simulation).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.faults.config import FaultConfig
from repro.vm.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K


def canonical_config_json(config: Any) -> str:
    """Canonical JSON form of a (nested) config dataclass.

    Keys are emitted sorted, so the text — and anything hashed from it —
    is invariant under dataclass *field reordering*; it changes only
    when a field is added, removed, renamed, or its value differs.
    Checkpoint cell keys and the sweep result cache both key off this
    (``tests/parallel/test_config_hash.py`` pins the invariance).
    """
    data = dataclasses.asdict(config) if dataclasses.is_dataclass(config) else config
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=repr)


def config_hash(config: Any) -> str:
    """Stable SHA-256 hex digest of :func:`canonical_config_json`."""
    return hashlib.sha256(canonical_config_json(config).encode("utf-8")).hexdigest()


def config_from_dict(data: Dict[str, Any]) -> "GPUConfig":
    """Rebuild a :class:`GPUConfig` from its :meth:`~GPUConfig.canonical_dict`.

    The inverse of ``dataclasses.asdict`` for the config tree: nested
    section dicts become their dataclasses again, and lists revert to
    tuples (JSON has no tuples; no config field is a genuine list).
    The round trip preserves :func:`config_hash`, which is what lets
    ``repro.serve`` journal a job's exact machine description and
    re-execute it after a restart with the same cache identity.
    """

    def _section(cls: type, payload: Any) -> Any:
        if not isinstance(payload, dict):
            return payload
        kwargs = {}
        for f in dataclasses.fields(cls):
            if f.name not in payload:
                continue
            value = payload[f.name]
            if dataclasses.is_dataclass(f.type) and isinstance(value, dict):
                value = _section(f.type, value)
            elif isinstance(value, list):
                value = tuple(value)
            kwargs[f.name] = value
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(
                f"{cls.__name__}: unknown config fields {sorted(unknown)}"
            )
        return cls(**kwargs)

    sections = {f.name: f for f in dataclasses.fields(GPUConfig)}
    unknown = set(data) - set(sections)
    if unknown:
        raise ValueError(f"GPUConfig: unknown config fields {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        f = sections[name]
        default = f.default_factory() if f.default_factory is not dataclasses.MISSING else None  # type: ignore[misc]
        if isinstance(value, dict) and dataclasses.is_dataclass(type(default)):
            kwargs[name] = _section(type(default), value)
        elif isinstance(value, list):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return GPUConfig(**kwargs)


@dataclass(frozen=True)
class TLBConfig:
    """Per-shader-core TLB design point (Section 6.1 design space).

    Attributes
    ----------
    enabled:
        False models the paper's no-TLB baseline (all speedups are
        reported against it).
    entries / associativity / ports:
        Geometry; the naive baseline is 128-entry, 3-port, the augmented
        design 4-port, the "ideal impractical" point 512-entry, 32-port.
    blocking:
        A blocking TLB services nothing while any miss is outstanding;
        warps with memory instructions stall behind it.
    hit_under_miss:
        Non-blocking level 1: other warps may translate (and proceed on
        hits) while misses are pending.
    cache_overlap:
        Non-blocking level 2: the TLB-hitting threads of a *missing*
        warp access the L1 immediately, overlapping cache latency with
        the walk (Section 6.3).
    ideal_latency:
        Waive the CACTI size/port access-time penalty (only the ideal
        comparison point uses this).
    mshr_entries:
        TLB miss status holding registers; one per warp thread (32).
    """

    enabled: bool = True
    entries: int = 128
    associativity: int = 4
    ports: int = 4
    blocking: bool = True
    hit_under_miss: bool = False
    cache_overlap: bool = False
    ideal_latency: bool = False
    mshr_entries: int = 32

    def __post_init__(self):
        if self.enabled:
            if self.entries <= 0:
                raise ValueError(
                    f"TLB entries must be positive, got {self.entries}"
                )
            if self.ports <= 0:
                raise ValueError(f"TLB ports must be positive, got {self.ports}")
            if self.associativity <= 0:
                raise ValueError(
                    f"TLB associativity must be positive, got {self.associativity}"
                )
            if self.entries % self.associativity:
                raise ValueError(
                    f"TLB entries ({self.entries}) must divide into "
                    f"{self.associativity}-way sets"
                )
            if self.mshr_entries < 1:
                raise ValueError(
                    f"TLB needs at least one MSHR entry, got {self.mshr_entries}"
                )
            if self.cache_overlap and self.blocking:
                raise ValueError(
                    "cache_overlap requires a non-blocking TLB "
                    "(set blocking=False, hit_under_miss=True)"
                )


@dataclass(frozen=True)
class PTWConfig:
    """Page table walker arrangement (Sections 6.2-6.3).

    ``count`` serial walkers per core; ``scheduled=True`` replaces them
    with the single coalescing scheduled walker of Figures 8-9
    (mutually exclusive with count > 1).
    """

    count: int = 1
    scheduled: bool = False

    def __post_init__(self):
        if self.count <= 0:
            raise ValueError("need at least one walker")
        if self.scheduled and self.count != 1:
            raise ValueError("the scheduled walker design uses a single walker")


@dataclass(frozen=True)
class CacheConfig:
    """L1 and L2 cache geometry.

    L1 parameters are the paper's (32 KB, 128-byte lines).  L2 defaults
    describe the *per-core slice* of the machine: the paper's 30 cores
    share 8 x 128 KB of L2, but its workloads also have ~30x our
    per-core footprint, so each simulated core gets a 1 MB slice —
    preserving the footprint:capacity ratio that determines hit rates.
    """

    l1_bytes: int = 32 * 1024
    line_bytes: int = 128
    l1_associativity: int = 8
    l1_latency: int = 1
    l1_mshr_entries: int = 16
    l2_bytes_per_channel: int = 1024 * 1024
    l2_associativity: int = 8
    l2_latency: int = 12
    l2_service_interval: int = 2

    def __post_init__(self):
        for name in ("l1_bytes", "line_bytes", "l1_associativity",
                     "l2_bytes_per_channel", "l2_associativity"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"cache {name} must be positive, got {getattr(self, name)}"
                )
        if self.l1_mshr_entries < 1:
            raise ValueError(
                f"L1 needs at least one MSHR entry, got {self.l1_mshr_entries}"
            )
        if self.l1_latency < 0 or self.l2_latency < 0:
            raise ValueError("cache latencies must be >= 0")
        if self.l2_service_interval < 1:
            raise ValueError(
                f"l2_service_interval must be >= 1, got {self.l2_service_interval}"
            )


@dataclass(frozen=True)
class DRAMConfig:
    """Memory channels and latencies (per-core slice).

    The paper's 30 cores share 8 channels (~0.27 channels/core); we
    give each simulated core one channel with the service interval
    scaled to match the per-core bandwidth share.
    """

    num_channels: int = 1
    access_latency: int = 350
    service_interval: int = 4
    interconnect_latency: int = 4

    def __post_init__(self):
        if self.num_channels < 1:
            raise ValueError(
                f"need at least one DRAM channel, got {self.num_channels}"
            )
        if self.access_latency < 0 or self.interconnect_latency < 0:
            raise ValueError("DRAM latencies must be >= 0")
        if self.service_interval < 1:
            raise ValueError(
                f"DRAM service_interval must be >= 1, got {self.service_interval}"
            )


@dataclass(frozen=True)
class SchedulerConfig:
    """Warp scheduler selection and CCWS-family tuning knobs.

    ``kind`` is one of:

    - ``"rr"`` — loose round-robin (the GPU default).
    - ``"gto"`` — greedy-then-oldest.
    - ``"ccws"`` — cache-conscious wavefront scheduling with cache-line
      victim tag arrays (Section 7.1).
    - ``"ta-ccws"`` — CCWS whose lost-locality scoring weights cache
      misses that also TLB-missed ``tlb_miss_weight`` times as much
      (Section 7.2, Figure 14).
    - ``"tcws"`` — TLB-conscious warp scheduling: page-grain VTAs fed by
      TLB evictions, plus LRU-depth-weighted score updates on TLB hits
      (Section 7.2, Figure 15).
    """

    kind: str = "rr"
    vta_entries_per_warp: int = 16
    vta_associativity: int = 8
    lls_cutoff: int = 64
    base_score: int = 1
    tlb_miss_weight: int = 4
    lru_hit_weights: Tuple[int, ...] = (1, 2, 4, 8)
    score_halflife: int = 4096
    min_active_warps: int = 8

    _KINDS = ("rr", "gto", "ccws", "ta-ccws", "tcws")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown scheduler kind {self.kind!r}; one of {self._KINDS}")
        if self.tlb_miss_weight < 1:
            raise ValueError("tlb_miss_weight must be >= 1")
        if not self.lru_hit_weights:
            raise ValueError("lru_hit_weights must be non-empty")


@dataclass(frozen=True)
class TBCConfig:
    """Thread block compaction settings (Section 8).

    ``mode`` is one of:

    - ``"stack"`` — baseline per-warp reconvergence stacks (no
      compaction).
    - ``"tbc"`` — baseline thread block compaction [Fung & Aamodt].
    - ``"tlb-tbc"`` — TLB-aware TBC gated by the Common Page Matrix.
    """

    mode: str = "stack"
    cpm_counter_bits: int = 3
    #: The paper flushes every 500 cycles; our regions span thousands of
    #: cycles (shorter traces, deeper per-access latencies), so the
    #: default scales accordingly.  bench_ablation_cpm_flush.py sweeps it.
    cpm_flush_interval: int = 5000

    _MODES = ("stack", "tbc", "tlb-tbc")

    def __post_init__(self):
        if self.mode not in self._MODES:
            raise ValueError(f"unknown TBC mode {self.mode!r}; one of {self._MODES}")
        if not 1 <= self.cpm_counter_bits <= 8:
            raise ValueError("CPM counters are 1-8 bits")
        if self.cpm_flush_interval <= 0:
            raise ValueError("CPM flush interval must be positive")


@dataclass(frozen=True)
class TraceConfig:
    """Observability settings (the :mod:`repro.obs` subsystem).

    Attributes
    ----------
    enabled:
        Master switch.  When False (the default) the simulator installs
        no tracer and every instrumentation site costs one boolean
        check; simulated results are byte-identical either way.
    ring_capacity:
        Events retained by the in-memory ring buffer (0 disables it;
        the ring feeds the post-hoc histograms in
        :mod:`repro.stats.histograms`).
    jsonl_path:
        Stream every event as JSON Lines to this file (None disables).
    chrome_path:
        Write a Perfetto-loadable Chrome trace-event JSON here on run
        completion (None disables).
    interval_cycles:
        Period of the :class:`repro.obs.interval.IntervalSampler`
        CoreStats-delta time series (0 disables sampling).
    """

    enabled: bool = False
    ring_capacity: int = 1 << 16
    jsonl_path: Optional[str] = None
    chrome_path: Optional[str] = None
    interval_cycles: int = 0

    def __post_init__(self):
        if self.ring_capacity < 0:
            raise ValueError("ring_capacity must be >= 0")
        if self.interval_cycles < 0:
            raise ValueError("interval_cycles must be >= 0")


@dataclass(frozen=True)
class GPUConfig:
    """Complete machine description."""

    num_cores: int = 1
    warps_per_core: int = 48
    warp_width: int = 32
    page_shift: int = PAGE_SHIFT_4K
    #: Warp instructions per warp excluded from measurement (structures
    #: stay warm; the clock and every counter restart once the core has
    #: issued ``warmup_instructions * warps`` instructions).  Standard
    #: steady-state methodology: compulsory TLB/cache misses of our
    #: short traces would otherwise be over-weighted relative to the
    #: paper's billions-of-instructions runs.
    warmup_instructions: int = 0
    tlb: TLBConfig = field(default_factory=TLBConfig)
    ptw: PTWConfig = field(default_factory=PTWConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    tbc: TBCConfig = field(default_factory=TBCConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Issue-loop strategy (:mod:`repro.engines`): ``"event"`` (default,
    #: fast path) or ``"cycle"`` (the reference loop).  Both produce
    #: byte-identical results; the field still participates in the
    #: config hash so cached sweep cells record which core produced
    #: them.  ``describe()`` omits it deliberately — descriptions label
    #: *machine* design points and both engines simulate the same
    #: machine.
    engine: str = "event"

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {self.num_cores}")
        if self.warps_per_core <= 0:
            raise ValueError(
                f"warps_per_core must be positive, got {self.warps_per_core}"
            )
        if self.warp_width <= 0:
            raise ValueError(f"warp_width must be positive, got {self.warp_width}")
        if self.warmup_instructions < 0:
            raise ValueError(
                f"warmup_instructions must be >= 0, got {self.warmup_instructions}"
            )
        if self.page_shift not in (PAGE_SHIFT_4K, PAGE_SHIFT_2M):
            raise ValueError("page_shift must be 12 (4 KB) or 21 (2 MB)")
        from repro.engines import available_engines

        if self.engine not in available_engines():
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"one of {sorted(available_engines())}"
            )

    def with_(self, **kwargs) -> "GPUConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def preset(cls, name: str, **overrides) -> "GPUConfig":
        """Build one of the paper's named design points.

        ``name`` is a key of :data:`repro.core.presets.PRESETS`
        (``"no_tlb"``, ``"blocking"``, ``"augmented"``, ``"ideal"``, ...);
        ``overrides`` pass through to the underlying factory, so e.g.
        ``GPUConfig.preset("no_tlb", warmup_instructions=20)`` works.
        Figure drivers and user code build configs the same one way.
        """
        from repro.core import presets as _presets

        return _presets.preset(name, **overrides)

    def canonical_dict(self) -> Dict[str, Any]:
        """Nested plain-dict form (the input to :func:`config_hash`)."""
        return dataclasses.asdict(self)

    def stable_hash(self) -> str:
        """Content hash of this machine description.

        Invariant under dataclass field reordering (keys are sorted
        before hashing); two configs hash equal iff every field of every
        nested config is equal.  Used for checkpoint cell keys and the
        content-addressed sweep result cache.
        """
        return config_hash(self)

    def describe(self) -> str:
        """One-line human-readable summary for bench output."""
        if not self.tlb.enabled:
            mmu = "no-TLB"
        else:
            bits = [f"{self.tlb.entries}e/{self.tlb.ports}p"]
            if self.tlb.ideal_latency:
                bits.append("ideal")
            if self.tlb.cache_overlap:
                bits.append("overlap")
            elif self.tlb.hit_under_miss:
                bits.append("HuM")
            elif self.tlb.blocking:
                bits.append("blocking")
            if self.ptw.scheduled:
                bits.append("ptw-sched")
            elif self.ptw.count > 1:
                bits.append(f"{self.ptw.count}ptw")
            mmu = "TLB " + "+".join(bits)
        parts = [mmu, f"sched={self.scheduler.kind}"]
        if self.tbc.mode != "stack":
            parts.append(f"tbc={self.tbc.mode}")
        if self.page_shift == PAGE_SHIFT_2M:
            parts.append("2MB-pages")
        if self.faults.enabled:
            bits = []
            if self.faults.demand_paging:
                bits.append("paging")
            if self.faults.injection_active:
                bits.append("inject")
            label = "faults:" + "+".join(bits) if bits else "faults"
            # The seed is part of the experiment's identity: same seed,
            # same fault sites.
            parts.append(f"{label}@{self.faults.seed}")
        return ", ".join(parts)
