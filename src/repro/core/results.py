"""Simulation results and the speedup arithmetic every figure uses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.stats.counters import CoreStats


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run.

    All of the paper's figures plot *speedup versus a no-TLB baseline*
    of the same machine; compute it with :func:`speedup` or
    :meth:`speedup_vs`.
    """

    workload: str
    config_description: str
    cycles: int
    stats: CoreStats
    l1_hits: int = 0
    l1_misses: int = 0
    avg_l1_miss_cycles: float = 0.0
    avg_walk_cycles: float = 0.0
    l2_hits: int = 0
    l2_misses: int = 0
    ptw_refs: int = 0
    ptw_l2_hit_rate: float = 0.0
    dram_requests: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def l1_miss_rate(self) -> float:
        """Demand L1 miss rate across all cores."""
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def tlb_miss_rate(self) -> float:
        """Coalesced TLB miss rate across all cores."""
        return self.stats.tlb_miss_rate

    def speedup_vs(self, baseline: "SimulationResult") -> float:
        """Runtime ratio baseline/self (>1 means this run is faster)."""
        return speedup(baseline, self)

    def overhead_vs(self, baseline: "SimulationResult") -> float:
        """Fractional runtime overhead of this run versus the baseline.

        The paper's acceptability criterion is 5-15 % of runtime.
        """
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles - 1.0


def speedup(baseline: SimulationResult, candidate: SimulationResult) -> float:
    """Speedup of ``candidate`` over ``baseline`` (cycles ratio).

    Values above 1 are improvements, below 1 degradations — the y-axis
    convention of every figure in the paper.
    """
    if candidate.cycles == 0:
        raise ValueError("candidate run has zero cycles")
    return baseline.cycles / candidate.cycles
