"""Simulation results and the speedup arithmetic every figure uses."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.stats.counters import CoreStats

#: Bumped when the serialized layout changes incompatibly.
RESULT_SCHEMA_VERSION = 1


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run.

    All of the paper's figures plot *speedup versus a no-TLB baseline*
    of the same machine; compute it with :func:`speedup` or
    :meth:`speedup_vs`.

    When the run traced (``GPUConfig.trace.enabled``),
    ``interval_series`` carries the per-core
    :class:`repro.obs.interval.IntervalSampler` rows and ``histograms``
    the ring-buffer-derived distributions
    (:func:`repro.stats.histograms.histograms_from_events`, serialized
    via ``Histogram.to_dict``).  Both stay empty on untraced runs so
    results compare equal with tracing off.
    """

    workload: str
    config_description: str
    cycles: int
    stats: CoreStats
    l1_hits: int = 0
    l1_misses: int = 0
    avg_l1_miss_cycles: float = 0.0
    avg_walk_cycles: float = 0.0
    l2_hits: int = 0
    l2_misses: int = 0
    ptw_refs: int = 0
    ptw_l2_hit_rate: float = 0.0
    dram_requests: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    interval_series: List[Dict[str, int]] = field(default_factory=list)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def l1_miss_rate(self) -> float:
        """Demand L1 miss rate across all cores."""
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def tlb_miss_rate(self) -> float:
        """Coalesced TLB miss rate across all cores."""
        return self.stats.tlb_miss_rate

    def speedup_vs(self, baseline: "SimulationResult") -> float:
        """Runtime ratio baseline/self (>1 means this run is faster)."""
        return speedup(baseline, self)

    def overhead_vs(self, baseline: "SimulationResult") -> float:
        """Fractional runtime overhead of this run versus the baseline.

        The paper's acceptability criterion is 5-15 % of runtime.
        """
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles - 1.0

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (``stats`` nested as its own dict).

        Fault counters (``CoreStats.FAULT_FIELDS``) are included only
        when nonzero: fault-free runs therefore serialize byte-identically
        to results produced before the fault subsystem existed
        (``tests/faults/test_regression.py`` pins this against golden
        files), and :meth:`from_dict` defaults the missing keys to 0, so
        the round trip is exact either way.
        """
        out = dataclasses.asdict(self)
        out["schema_version"] = RESULT_SCHEMA_VERSION
        stats = out["stats"]
        for name in CoreStats.FAULT_FIELDS:
            if not stats.get(name):
                stats.pop(name, None)
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize so benchmark outputs can be diffed mechanically."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def canonical_json(self) -> str:
        """Compact sorted-key JSON — the result-cache storage format.

        The round trip ``from_json(canonical_json()).canonical_json()``
        is byte-identical (``tests/parallel/test_cache.py`` pins it), so
        a cache hit is indistinguishable from a fresh simulation.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        data = dict(data)
        data.pop("schema_version", None)
        stats = data.pop("stats", None)
        field_names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in field_names}
        kwargs["stats"] = CoreStats(**stats) if stats is not None else CoreStats()
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def speedup(baseline: SimulationResult, candidate: SimulationResult) -> float:
    """Speedup of ``candidate`` over ``baseline`` (cycles ratio).

    Values above 1 are improvements, below 1 degradations — the y-axis
    convention of every figure in the paper.
    """
    if candidate.cycles == 0:
        raise ValueError("candidate run has zero cycles")
    return baseline.cycles / candidate.cycles
