"""Core: machine configuration, named presets, simulator driver, results."""

from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    PTWConfig,
    SchedulerConfig,
    TBCConfig,
    TLBConfig,
)
from repro.core.results import SimulationResult, speedup
from repro.core.simulator import Simulator
from repro.core import presets

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "PTWConfig",
    "SchedulerConfig",
    "TBCConfig",
    "TLBConfig",
    "SimulationResult",
    "Simulator",
    "speedup",
    "presets",
]
