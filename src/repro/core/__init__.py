"""Core: machine configuration, named presets, simulator driver, results."""

from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    PTWConfig,
    SchedulerConfig,
    TBCConfig,
    TLBConfig,
    TraceConfig,
)
from repro.core.results import SimulationResult, speedup
from repro.core.simulator import Simulator
from repro.core import presets

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "PTWConfig",
    "SchedulerConfig",
    "TBCConfig",
    "TLBConfig",
    "TraceConfig",
    "SimulationResult",
    "Simulator",
    "speedup",
    "presets",
]
