"""Named machine configurations: every design point the paper evaluates.

Each function returns a fresh :class:`GPUConfig`.  Keyword arguments
(``num_cores``, scheduler overrides, TBC mode...) pass through so the
benchmarks can combine MMU design points with scheduler/TBC variants —
exactly the config matrix of Figures 2, 13 and 20.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import (
    GPUConfig,
    PTWConfig,
    SchedulerConfig,
    TBCConfig,
    TLBConfig,
)


def _base(**overrides) -> GPUConfig:
    return GPUConfig(**overrides)


def no_tlb(**overrides) -> GPUConfig:
    """The baseline every figure normalizes against: no address
    translation at all (today's separate-address-space GPUs)."""
    return _base(tlb=TLBConfig(enabled=False), **overrides)


def naive_tlb(ports: int = 3, **overrides) -> GPUConfig:
    """Section 6.2's strawman: 128-entry blocking TLB (3 ports as in
    Figure 2; pass ``ports=4`` for the Figure 6+ baseline) with one
    serial page table walker."""
    return _base(
        tlb=TLBConfig(entries=128, ports=ports, blocking=True),
        ptw=PTWConfig(count=1, scheduled=False),
        **overrides,
    )


def tlb_with_geometry(entries: int, ports: int, ideal: bool = False, **overrides) -> GPUConfig:
    """A naive blocking TLB with arbitrary geometry (Figure 6 sweep)."""
    associativity = 4 if entries % 4 == 0 else 1
    return _base(
        tlb=TLBConfig(
            entries=entries,
            associativity=associativity,
            ports=ports,
            blocking=True,
            ideal_latency=ideal,
        ),
        **overrides,
    )


def hit_under_miss_tlb(**overrides) -> GPUConfig:
    """First non-blocking step (Figure 7): hits from other warps may
    proceed under an outstanding miss."""
    return _base(
        tlb=TLBConfig(entries=128, ports=4, blocking=False, hit_under_miss=True),
        **overrides,
    )


def overlap_tlb(**overrides) -> GPUConfig:
    """Second non-blocking step (Figure 7): TLB-hitting threads of a
    missing warp also access the cache immediately."""
    return _base(
        tlb=TLBConfig(
            entries=128,
            ports=4,
            blocking=False,
            hit_under_miss=True,
            cache_overlap=True,
        ),
        **overrides,
    )


def augmented_tlb(**overrides) -> GPUConfig:
    """The paper's recommended design (Figure 10 onwards): 128-entry
    4-port non-blocking TLB with cache overlap plus the coalescing PTW
    scheduler."""
    return _base(
        tlb=TLBConfig(
            entries=128,
            ports=4,
            blocking=False,
            hit_under_miss=True,
            cache_overlap=True,
        ),
        ptw=PTWConfig(count=1, scheduled=True),
        **overrides,
    )


def multi_ptw_tlb(num_walkers: int, **overrides) -> GPUConfig:
    """Naive blocking TLB with a pool of serial walkers (Figure 11)."""
    return _base(
        tlb=TLBConfig(entries=128, ports=4, blocking=True),
        ptw=PTWConfig(count=num_walkers, scheduled=False),
        **overrides,
    )


def ideal_tlb(**overrides) -> GPUConfig:
    """The impractical comparison point: 512 entries, 32 ports, no
    access-latency penalty, fully non-blocking, scheduled walker."""
    return _base(
        tlb=TLBConfig(
            entries=512,
            ports=32,
            blocking=False,
            hit_under_miss=True,
            cache_overlap=True,
            ideal_latency=True,
        ),
        ptw=PTWConfig(count=1, scheduled=True),
        **overrides,
    )


# ---------------------------------------------------------------------
# Scheduler / TBC combinators
# ---------------------------------------------------------------------


def with_ccws(config: GPUConfig, **sched_overrides) -> GPUConfig:
    """Swap in cache-conscious wavefront scheduling."""
    return replace(
        config, scheduler=SchedulerConfig(kind="ccws", **sched_overrides)
    )


def with_ta_ccws(config: GPUConfig, tlb_miss_weight: int = 4, **sched_overrides) -> GPUConfig:
    """Swap in TLB-aware CCWS with the given miss weight (Figure 16)."""
    return replace(
        config,
        scheduler=SchedulerConfig(
            kind="ta-ccws", tlb_miss_weight=tlb_miss_weight, **sched_overrides
        ),
    )


def with_tcws(
    config: GPUConfig,
    entries_per_warp: int = 8,
    lru_hit_weights=(1, 2, 4, 8),
    **sched_overrides,
) -> GPUConfig:
    """Swap in TLB-conscious warp scheduling (Figures 17-18)."""
    return replace(
        config,
        scheduler=SchedulerConfig(
            kind="tcws",
            vta_entries_per_warp=entries_per_warp,
            lru_hit_weights=tuple(lru_hit_weights),
            **sched_overrides,
        ),
    )


def with_tbc(config: GPUConfig, mode: str = "tbc", counter_bits: int = 3) -> GPUConfig:
    """Enable thread block compaction (``"tbc"`` or ``"tlb-tbc"``)."""
    return replace(
        config, tbc=TBCConfig(mode=mode, cpm_counter_bits=counter_bits)
    )


# ---------------------------------------------------------------------
# Named-preset registry (GPUConfig.preset)
# ---------------------------------------------------------------------

#: Parameterless design points by canonical name.  ``"blocking"`` is the
#: 4-port naive baseline used from Figure 6 onwards; ``"naive"`` keeps
#: Figure 2's 3-port strawman.  Aliases map common spellings onto the
#: canonical names.
PRESETS = {
    "no_tlb": no_tlb,
    "naive": naive_tlb,
    "blocking": lambda **kw: naive_tlb(ports=4, **kw),
    "hit_under_miss": hit_under_miss_tlb,
    "non_blocking": overlap_tlb,
    "augmented": augmented_tlb,
    "ideal": ideal_tlb,
}

_ALIASES = {
    "no-tlb": "no_tlb",
    "notlb": "no_tlb",
    "baseline": "no_tlb",
    "hum": "hit_under_miss",
    "overlap": "non_blocking",
    "nonblocking": "non_blocking",
}


def preset_names() -> list:
    """Canonical preset names, sorted (error messages and docs)."""
    return sorted(PRESETS)


def preset(name: str, **overrides) -> GPUConfig:
    """Build the named design point; overrides pass to its factory.

    Raises ``ValueError`` naming the valid choices on an unknown name.
    """
    key = _ALIASES.get(name, name)
    factory = PRESETS.get(key)
    if factory is None:
        raise ValueError(
            f"unknown config preset {name!r}; choose from {preset_names()}"
        )
    return factory(**overrides)
