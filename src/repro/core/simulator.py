"""The top-level simulator: build the machine, run the workload.

Responsibilities: allocate physical memory and the process page table,
pre-map every page the workload touches (the paper's workloads never
page-fault, Section 6.2 — unless ``config.faults.demand_paging`` asks
for pages to fault in on first touch), instantiate the shared memory
system and one shader core per configured core, execute, aggregate
statistics into a :class:`repro.core.results.SimulationResult`, and
cross-check counter invariants afterwards.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import GPUConfig, TraceConfig
from repro.core.results import SimulationResult
from repro.engines import DEFAULT_ENGINE, require_features
from repro.faults.context import FaultContext
from repro.faults.errors import InvariantViolation, SimulationError
from repro.gpu.instruction import MemoryInstruction, WarpTrace
from repro.gpu.shader_core import ShaderCore
from repro.gpu.tbc.blocks import ThreadBlock
from repro.mem.hierarchy import SharedMemory
from repro.obs import log as _log
from repro.obs import spans as _spans
from repro.obs import tracer as obs_tracer
from repro.obs.interval import IntervalSampler
from repro.prof import profiler as _prof
from repro.ptw.multi import WalkerPool
from repro.stats.counters import CoreStats
from repro.stats.histograms import histograms_from_events
from repro.vm.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K
from repro.vm.page_table import PageTable
from repro.vm.physical_memory import PhysicalMemory

CoreWork = Union[Sequence[WarpTrace], Sequence[ThreadBlock]]


def _addresses_of(work: CoreWork) -> Iterable[int]:
    """Yield every virtual address a core's work touches."""
    for item in work:
        if isinstance(item, ThreadBlock):
            for region in item.regions:
                for addresses in region.thread_addresses.values():
                    yield from addresses
        else:
            for instr in item.instructions:
                if isinstance(instr, MemoryInstruction):
                    for addr in instr.addresses:
                        if addr is not None:
                            yield addr


#: page_shift -> {id(work item): (item, first-touch-ordered vpns)}.
#: Workload builds are memoized, so the same trace / thread-block
#: objects recur across a sweep's cells; extracting their page-touch
#: order once amortizes pre-mapping.  Values hold the item itself, so
#: an id() can never alias a collected object.
_VPN_ORDER_CACHES: Dict[int, Dict[int, tuple]] = {}

#: Entry cap across all page sizes; eviction is a full clear.
_VPN_ORDER_CACHE_LIMIT = 100_000


def _vpns_of(item, page_shift: int) -> tuple:
    """First-touch-ordered unique VPNs of one trace / thread block."""
    cache = _VPN_ORDER_CACHES.setdefault(page_shift, {})
    cached = cache.get(id(item))
    if cached is not None and cached[0] is item:
        return cached[1]
    if len(cache) > _VPN_ORDER_CACHE_LIMIT:
        cache.clear()
    seen: Dict[int, None] = {}
    for addr in _addresses_of((item,)):
        seen[addr >> page_shift] = None
    vpns = tuple(seen)
    cache[id(item)] = (item, vpns)
    return vpns


#: When set, every run uses this trace configuration instead of its
#: config's own (see :func:`trace_override`).
_TRACE_OVERRIDE: Optional[TraceConfig] = None


@contextlib.contextmanager
def trace_override(trace: TraceConfig):
    """Force ``trace`` on every :meth:`Simulator.run` in the block.

    The observation-only escape hatch for entry points that build their
    configs internally (figure drivers, the bench harness): the whole
    sweep runs fully observed without touching a single config, so
    results, config hashes, and cache keys are exactly those of the
    untraced run.  Nests; restores the previous override on exit.
    """
    global _TRACE_OVERRIDE
    previous = _TRACE_OVERRIDE
    _TRACE_OVERRIDE = trace
    try:
        yield
    finally:
        _TRACE_OVERRIDE = previous


class Simulator:
    """Run a workload on a machine configuration.

    Parameters
    ----------
    config:
        The machine.
    per_core_work:
        One work list per core: warp traces (linear mode) or thread
        blocks (TBC modes).  Workload objects produce this via
        :meth:`repro.workloads.base.Workload.build`.
    workload_name:
        Label carried into the result.
    """

    #: Direct construction is deprecated in favor of the
    #: :mod:`repro.api` facade; internal callers go through
    #: :meth:`_build`, which suppresses the warning.
    _warn_on_init = True

    @classmethod
    def _build(
        cls,
        config: GPUConfig,
        per_core_work: Sequence[CoreWork],
        workload_name: str = "custom",
    ) -> "Simulator":
        """Internal constructor: no deprecation warning."""
        cls._warn_on_init = False
        try:
            return cls(config, per_core_work, workload_name)
        finally:
            cls._warn_on_init = True

    def __init__(
        self,
        config: GPUConfig,
        per_core_work: Sequence[CoreWork],
        workload_name: str = "custom",
    ):
        if Simulator._warn_on_init:
            warnings.warn(
                "direct Simulator(...) construction is deprecated; use "
                "repro.api.simulate(config=..., workload=...) (or "
                "repro.api.sweep/figure), which resolves presets, "
                "builds workloads, and honors engine selection",
                DeprecationWarning,
                stacklevel=2,
            )
        if len(per_core_work) != config.num_cores:
            raise ValueError(
                f"workload provides {len(per_core_work)} cores of work; "
                f"config has {config.num_cores}"
            )
        self.config = config
        self.workload_name = workload_name
        self.memory = PhysicalMemory()
        self.page_table = PageTable(self.memory)
        self.faults = FaultContext.build(
            config.faults,
            self.page_table,
            tlb_enabled=config.tlb.enabled,
            page_shift=config.page_shift,
        )
        self._map_pages(per_core_work)
        dram = config.dram
        cache = config.cache
        # Cores execute sequentially in this simulator, and the
        # workloads give every core disjoint pages, so cores interact
        # only through shared *bandwidth*.  Each core therefore gets its
        # own memory-system instance carrying its 1/num_cores share of
        # the channels (service intervals scale when channels do not
        # divide evenly), which models contention without coupling the
        # cores' clocks.
        channels_per_core = max(1, dram.num_channels // config.num_cores)
        scale = config.num_cores * channels_per_core / dram.num_channels
        self.shared_per_core: List[SharedMemory] = [
            SharedMemory(
                num_channels=channels_per_core,
                l2_bytes_per_channel=cache.l2_bytes_per_channel
                * dram.num_channels
                // (config.num_cores * channels_per_core),
                line_bytes=cache.line_bytes,
                l2_associativity=cache.l2_associativity,
                l2_latency=cache.l2_latency,
                l2_service_interval=max(
                    1, round(cache.l2_service_interval * scale)
                ),
                interconnect_latency=dram.interconnect_latency,
                dram_latency=dram.access_latency,
                dram_service_interval=max(
                    1, round(dram.service_interval * scale)
                ),
            )
            for _ in range(config.num_cores)
        ]
        self.cores: List[ShaderCore] = [
            ShaderCore(
                core_id,
                config,
                self.page_table,
                self.shared_per_core[core_id],
                work,
                frame_map=self.frame_map,
                faults=self.faults,
            )
            for core_id, work in enumerate(per_core_work)
        ]
        # Re-entrant run state: which core is executing and the
        # cross-core aggregates accumulated so far.  Kept on the
        # instance so a snapshot taken from the per-core ``poll`` hook
        # (see :meth:`run`) captures a resumable simulation.
        self._core_cursor = 0
        self._merged = CoreStats(cores=0)
        self._l1_hits = 0
        self._l1_misses = 0
        self._total_l1_miss_latency = 0
        self._walk_cycles = 0
        self._walks = 0
        self._tracer = None
        # Ring-sink state restored from a snapshot before run() has
        # built the tracer; applied (and cleared) once it exists.
        self._pending_ring_state: Optional[dict] = None

    def _map_pages(self, per_core_work: Sequence[CoreWork]) -> None:
        """Pre-map every touched page (4 KB, or 2 MB in large-page mode).

        Also records ``frame_map`` (vpn → pfn at the configured page
        size): the no-TLB baseline uses it for zero-latency physical
        addressing, so baseline and TLB runs exercise identical cache
        set behaviour and differ only in translation cost.

        Under demand paging (``config.faults.demand_paging`` on a
        TLB-enabled machine) nothing is pre-mapped: pages fault in at
        first touch through :class:`repro.faults.model.FaultModel`.
        """
        large = self.config.page_shift == PAGE_SHIFT_2M
        self.frame_map = {}
        if self.faults is not None and self.faults.model is not None:
            return
        shift = PAGE_SHIFT_2M if large else PAGE_SHIFT_4K
        ensure = (
            self.page_table.ensure_mapped_large
            if large
            else self.page_table.ensure_mapped
        )
        frame_map = self.frame_map
        # Per-item VPN first-touch order is cached (_vpns_of); walking
        # items in work order preserves the global first-touch order —
        # and with it the frame-assignment order — exactly.
        for work in per_core_work:
            for item in work:
                for vpn in _vpns_of(item, shift):
                    if vpn not in frame_map:
                        frame_map[vpn] = ensure(vpn)

    def run(self, poll=None) -> SimulationResult:
        """Execute every core and aggregate the statistics.

        When ``config.trace.enabled`` a tracer is installed for the
        duration of the run; the instrumentation is observation-only,
        so every simulated quantity is identical with tracing on or off
        (``tests/obs/test_overhead.py`` asserts this).

        ``poll``, when given, is forwarded to each core's issue loop
        and called with the *core* at every safe point; a callback that
        captures this simulator may call :meth:`state_dict` there to
        snapshot the whole run (see :mod:`repro.snapshot`).  A run
        resumed via :meth:`load_state` continues from the saved core
        cursor — finished cores are not re-executed.
        """
        trace_config = (
            _TRACE_OVERRIDE
            if _TRACE_OVERRIDE is not None
            else self.config.trace
        )
        # Observer runs require the engine to support them natively —
        # there is no silent fallback to another engine.  Validate the
        # exact observer set active for this run up front so a
        # capability gap fails loudly (the CLI maps this to exit 2).
        needed = set()
        if trace_config.enabled:
            needed.add("trace")
            if trace_config.interval_cycles:
                needed.add("sampling")
        if _spans.ENABLED:
            needed.add("spans")
        if _prof.ENABLED:
            needed.add("profile")
        if needed:
            require_features(
                getattr(self.config, "engine", DEFAULT_ENGINE), needed
            )
        tracer = None
        if trace_config.enabled:
            tracer = obs_tracer.build_tracer(trace_config)
            obs_tracer.install(tracer)
            self._tracer = tracer
            if trace_config.interval_cycles:
                for core in self.cores:
                    core.sampler = IntervalSampler(
                        trace_config.interval_cycles, core_id=core.core_id
                    )
                    if core._pending_sampler_state is not None:
                        core.sampler.load_state(core._pending_sampler_state)
                        core._pending_sampler_state = None
            if self._pending_ring_state is not None:
                ring = tracer.ring()
                if ring is not None:
                    ring.load_state(self._pending_ring_state)
                self._pending_ring_state = None
        merged = self._merged
        run_log = None
        if _log.ENABLED:
            run_log = _log.get_logger(
                "simulator",
                engine=getattr(self.config, "engine", DEFAULT_ENGINE),
                config=self.config.stable_hash()[:12],
                workload=self.workload_name,
            )
            run_log.info(
                "run_start",
                cores=len(self.cores),
                traced=trace_config.enabled,
                spans=_spans.ENABLED,
                resumed=self._core_cursor > 0,
            )
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_SIMULATE)
        try:
            while self._core_cursor < len(self.cores):
                core = self.cores[self._core_cursor]
                try:
                    stats = core.run(poll)
                except SimulationError as exc:
                    exc.add_context(
                        workload=self.workload_name,
                        config=self.config.describe(),
                        core=core.core_id,
                    )
                    if run_log is not None:
                        run_log.error(
                            "run_failed",
                            core=core.core_id,
                            error=type(exc).__name__,
                        )
                    raise
                merged.merge(stats)
                hits, misses, miss_latency = core.steady_memory_counters()
                self._l1_hits += hits
                self._l1_misses += misses
                self._total_l1_miss_latency += miss_latency
                core_walks, _, _, core_walk_cycles = core.steady_walker_counters()
                self._walk_cycles += core_walk_cycles
                self._walks += core_walks
                self._core_cursor += 1
        finally:
            if _prof.ENABLED:
                # Closes the simulate frame plus any frames an error
                # left open mid-walk, so attribution stays balanced.
                _prof.end_through(_prof.PHASE_SIMULATE)
            if tracer is not None:
                obs_tracer.uninstall()
                self._tracer = None
        l1_hits = self._l1_hits
        l1_misses = self._l1_misses
        total_l1_miss_latency = self._total_l1_miss_latency
        walk_cycles = self._walk_cycles
        walks = self._walks
        if self.faults is not None and self.faults.model is not None:
            model = self.faults.model
            merged.page_faults_minor = model.minor_faults
            merged.page_faults_major = model.major_faults
            merged.page_fault_stall_cycles = model.fault_stall_cycles
        self._check_invariants(merged)
        l2_hits = sum(s.l2_hits for s in self.shared_per_core)
        l2_misses = sum(s.l2_misses for s in self.shared_per_core)
        ptw_refs = sum(s.ptw_refs for s in self.shared_per_core)
        ptw_l2_hits = sum(s.ptw_l2_hits for s in self.shared_per_core)
        dram_requests = sum(s.dram.requests for s in self.shared_per_core)
        result = SimulationResult(
            workload=self.workload_name,
            config_description=self.config.describe(),
            cycles=merged.cycles,
            stats=merged,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            avg_l1_miss_cycles=(
                total_l1_miss_latency / l1_misses if l1_misses else 0.0
            ),
            avg_walk_cycles=walk_cycles / walks if walks else 0.0,
            l2_hits=l2_hits,
            l2_misses=l2_misses,
            ptw_refs=ptw_refs,
            ptw_l2_hit_rate=ptw_l2_hits / ptw_refs if ptw_refs else 0.0,
            dram_requests=dram_requests,
        )
        if _prof.ENABLED:
            _prof.add("cells", 1)
            _prof.add("sim_cycles", result.cycles)
        if tracer is not None:
            result.interval_series = [
                row
                for core in self.cores
                if core.sampler is not None
                for row in core.sampler.rows
            ]
            ring = tracer.ring()
            if ring is not None:
                result.histograms = {
                    name: hist.to_dict()
                    for name, hist in histograms_from_events(
                        ring.events()
                    ).items()
                }
            tracer.close()
        if run_log is not None:
            run_log.info(
                "run_end",
                cycles=result.cycles,
                instructions=merged.instructions,
                tlb_misses=merged.tlb_misses,
            )
        return result

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the full simulation, valid at core safe points.

        The returned structure is JSON-safe; :mod:`repro.snapshot`
        wraps it in a versioned envelope and persists it atomically.
        Loading it into a freshly constructed simulator (same config,
        same workload) and calling :meth:`run` again produces a result
        byte-identical to the uninterrupted run.
        """
        ring_state = None
        if self._tracer is not None:
            ring = self._tracer.ring()
            if ring is not None:
                ring_state = ring.state_dict()
        return {
            "core_cursor": self._core_cursor,
            "merged": asdict(self._merged),
            "agg": {
                "l1_hits": self._l1_hits,
                "l1_misses": self._l1_misses,
                "total_l1_miss_latency": self._total_l1_miss_latency,
                "walk_cycles": self._walk_cycles,
                "walks": self._walks,
            },
            "memory": self.memory.state_dict(),
            "page_table": self.page_table.state_dict(),
            "frame_map": [[vpn, pfn] for vpn, pfn in self.frame_map.items()],
            "faults": (
                self.faults.state_dict() if self.faults is not None else None
            ),
            "shared": [s.state_dict() for s in self.shared_per_core],
            "cores": [core.state_dict() for core in self.cores],
            "ring": ring_state,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        Must be called on a simulator built from the identical config
        and workload (the snapshot envelope pins the config hash);
        constructor side effects — pre-mapped pages, TBC region-0
        launches — are overwritten wholesale.
        """
        self._core_cursor = state["core_cursor"]
        self._merged = CoreStats(**state["merged"])
        agg = state["agg"]
        self._l1_hits = agg["l1_hits"]
        self._l1_misses = agg["l1_misses"]
        self._total_l1_miss_latency = agg["total_l1_miss_latency"]
        self._walk_cycles = agg["walk_cycles"]
        self._walks = agg["walks"]
        self.memory.load_state(state["memory"])
        self.page_table.load_state(state["page_table"])
        # Cores alias this exact dict object; mutate it in place.
        self.frame_map.clear()
        self.frame_map.update({vpn: pfn for vpn, pfn in state["frame_map"]})
        if self.faults is not None and state["faults"] is not None:
            self.faults.load_state(state["faults"])
        for shared, shared_state in zip(self.shared_per_core, state["shared"]):
            shared.load_state(shared_state)
        for core, core_state in zip(self.cores, state["cores"]):
            core.load_state(core_state)
        self._pending_ring_state = state["ring"]

    def _check_invariants(self, merged: CoreStats) -> None:
        """Cheap post-run consistency checks on the aggregated counters.

        These catch wiring bugs (a counter updated on one path but not
        another) at the point they happen rather than as a silently
        wrong figure; they hold for every machine configuration, with
        faults enabled or not.
        """
        context = {
            "workload": self.workload_name,
            "config": self.config.describe(),
        }
        if merged.tlb_hits + merged.tlb_misses != merged.tlb_lookups:
            raise InvariantViolation(
                f"TLB accounting broken: {merged.tlb_hits} hits + "
                f"{merged.tlb_misses} misses != {merged.tlb_lookups} lookups",
                diagnostics=context,
            )
        if merged.memory_instructions > merged.instructions:
            raise InvariantViolation(
                f"{merged.memory_instructions} memory instructions exceed "
                f"{merged.instructions} total instructions",
                diagnostics=context,
            )
        for name, value in vars(merged).items():
            if isinstance(value, int) and value < 0:
                raise InvariantViolation(
                    f"counter {name!r} went negative ({value})",
                    diagnostics=context,
                )
