"""Content-addressed cache of simulation results.

Figures overlap heavily — fig07 and fig10 share their ``no-tlb``,
``naive`` and ``ideal`` cells, and a rerun of any figure repeats every
cell — so the sweep engine can skip a simulation whenever an identical
one already ran.  "Identical" is decided by content, not by figure or
series label: the cache key hashes the canonical form of the
:class:`GPUConfig` (field-order independent, fault seed included), the
workload name, the trace form and miss scale, plus two version salts:

- :data:`SIMULATION_VERSION` — bump when a change makes the simulator
  produce different numbers for the same config (timing model fixes,
  workload generator changes).  Stale entries then miss instead of
  poisoning new sweeps.
- :data:`repro.core.results.RESULT_SCHEMA_VERSION` — already bumped on
  incompatible result-layout changes.

Entries are single JSON files named by their key, written atomically
(temp file + ``os.replace``), so concurrent sweeps sharing a cache
directory can race harmlessly: the worst case is both simulating and
one overwrite with identical bytes.  Delete the directory (or bump the
salt) to invalidate.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Optional

from repro.core.config import canonical_config_json
from repro.core.results import RESULT_SCHEMA_VERSION, SimulationResult
from repro.parallel.cells import Cell

#: Code-version salt: bump on any change to simulated timing/semantics.
SIMULATION_VERSION = "sim-v1"


def cache_key(cell: Cell) -> str:
    """Content hash identifying ``cell``'s simulation outcome."""
    payload = "\n".join(
        [
            SIMULATION_VERSION,
            f"schema-{RESULT_SCHEMA_VERSION}",
            canonical_config_json(cell.config),
            cell.workload,
            cell.form if cell.form is not None else "-",
            repr(cell.miss_scale),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` simulation results.

    Tracks ``hits``/``misses``/``stores``/``evictions`` so progress
    reporting and tests can observe short-circuiting.

    ``max_bytes`` bounds the cache's total size: once a store pushes the
    directory past the limit, the least-recently-*used* entries (mtime
    order; :meth:`get` touches entries on hit) are deleted until it fits
    again.  The bound is advisory under concurrent writers — each
    process enforces it against its own view of the directory — which is
    safe because eviction only ever deletes whole entries, and a deleted
    entry is indistinguishable from a miss.
    """

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def _path(self, key: str) -> str:
        # Two-level fan-out keeps directories small on huge campaigns.
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, cell: Cell) -> Optional[SimulationResult]:
        """The cached result for ``cell``, or None (counted either way)."""
        path = self._path(cache_key(cell))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            result = SimulationResult.from_json(text)
        except (OSError, ValueError):
            # Missing, torn, or corrupt entry: treat as a miss; a fresh
            # simulation will overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        try:
            # Touch on hit so LRU eviction spares hot entries.
            os.utime(path)
        except OSError:
            pass
        return result

    def put(self, cell: Cell, result: SimulationResult) -> None:
        """Store ``result`` for ``cell`` atomically."""
        path = self._path(cache_key(cell))
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(result.canonical_json())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1
        if self.max_bytes is not None:
            self._evict(keep=path)

    def _entries(self):
        """Every ``(mtime, size, path)`` entry currently on disk."""
        entries = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # concurrently evicted elsewhere
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Bytes currently stored (entry payloads only)."""
        return sum(size for _mtime, size, _path in self._entries())

    def _evict(self, keep: str) -> None:
        """Delete oldest entries until the cache fits ``max_bytes``.

        ``keep`` (the entry just stored) is never evicted, even when it
        alone exceeds the bound — a cache too small for one result
        degrades to holding exactly the latest, not to thrashing
        nothing at all.
        """
        assert self.max_bytes is not None
        entries = self._entries()
        total = sum(size for _mtime, size, _path in entries)
        if total <= self.max_bytes:
            return
        for _mtime, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            if os.path.abspath(path) == os.path.abspath(keep):
                continue
            try:
                os.remove(path)
            except OSError:
                continue  # lost a race with a concurrent evictor
            total -= size
            self.evictions += 1

    def __len__(self) -> int:
        """Number of entries currently stored."""
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count
