"""The supervised worker pool: heartbeats, snapshots, bounded restarts.

One spawned process per sweep cell (up to the slot count), supervised
through a spool directory rather than pipes — pipes die with the
process, files survive it:

- ``hb-<index>``: touched by the worker as its *first* action and
  periodically from the simulator's safe-point poll hook.  The parent
  reads its mtime; staleness beyond ``stale_after`` seconds means the
  worker is hung and gets SIGKILLed.
- ``snap-<index>.json``: the worker's periodic mid-cell snapshot
  (:mod:`repro.snapshot`), written atomically.  A restarted worker
  resumes from it instead of recomputing the cell from scratch.
- ``out-<index>.json``: the worker's final outcome (result or
  structured error), written atomically, so the parent never reads a
  torn result.

Failure taxonomy:

- **dead** (exit code set, no outcome, heartbeat seen): SIGKILL/OOM —
  restart from the latest snapshot, up to ``restart_budget`` times per
  cell; exhaustion fails the *cell* with
  :class:`repro.faults.errors.WorkerCrashed`, never the sweep.
- **hung** (alive, heartbeat stale): SIGKILLed, then as above.
- **environment** (dead before its first heartbeat): the interpreter
  could not even start the worker (unimportable ``__main__``, broken
  spawn) — restarting cannot help, so the pool raises
  :class:`PoolEnvironmentFailure` and the executor degrades to serial
  execution, matching the old ``BrokenProcessPool`` fallback.

Repeated crashes additionally shrink the slot count (see
:class:`PoolHealth`) so a memory-starved host degrades to fewer
concurrent workers instead of thrashing every cell through its restart
budget.

Determinism: cells are self-contained and the resume path is pinned
byte-identical to an uninterrupted run, so results never depend on
which worker ran a cell, how often it was killed, or where the
snapshots landed.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.faults.errors import SimulationError, WorkerCrashed
from repro.obs import log as _log
from repro.parallel.backoff import Backoff
from repro.parallel.cells import Cell, error_payload, key_of

#: Parent poll period, seconds (also the chaos hook's tick).
_TICK_SECONDS = 0.05

#: Default mid-cell snapshot period, simulated cycles.
DEFAULT_SNAPSHOT_CYCLES = 50_000

#: Default restarts per cell before the cell fails with WorkerCrashed.
DEFAULT_RESTART_BUDGET = 2

#: Default heartbeat staleness (seconds) before a live worker counts as
#: hung.  Generous: heartbeats are relayed from the issue loop every few
#: hundred iterations, orders of magnitude faster than this.
DEFAULT_STALE_AFTER = 30.0

#: Minimum seconds between actual utime() calls of a worker heartbeat.
_HEARTBEAT_PERIOD = 0.2


class PoolEnvironmentFailure(RuntimeError):
    """Workers die before their first heartbeat: spawning is broken."""


class PoolHealth:
    """Slot-count governor: repeated crashes shrink the pool.

    ``shrink_after`` *consecutive* crashes (no success in between)
    drop one slot, down to a floor of one — an OOM-prone host ends up
    running fewer cells at a time instead of burning every cell's
    restart budget.  Any completed cell resets the streak.
    """

    def __init__(self, slots: int, shrink_after: int = 2):
        self.slots = max(1, slots)
        self.shrink_after = max(1, shrink_after)
        self._streak = 0
        self.shrinks = 0

    def on_crash(self) -> None:
        self._streak += 1
        if self._streak >= self.shrink_after and self.slots > 1:
            self.slots -= 1
            self.shrinks += 1
            self._streak = 0

    def on_success(self) -> None:
        self._streak = 0


class _Heartbeat:
    """Worker-side heartbeat: throttled utime on the spool file."""

    def __init__(self, path: str):
        self.path = path
        self._last = 0.0
        self()  # first beat immediately — before any simulation work

    def __call__(self) -> None:
        now = time.monotonic()
        if now - self._last < _HEARTBEAT_PERIOD:
            return
        self._last = now
        with open(self.path, "a", encoding="utf-8"):
            pass
        os.utime(self.path)


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = os.path.join(
        os.path.dirname(path), f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _worker_entry(
    index: int,
    cell: Cell,
    retries: int,
    timeout: Optional[float],
    spool: str,
    snapshot_every: int,
) -> None:
    """Spawned-process entry: run one cell, leave an outcome file.

    No exception ever crosses the process boundary: structured errors
    become ``"error"`` outcomes (with traceback and cell key), anything
    else becomes a ``"raise"`` outcome the parent re-raises by type.
    Only a kill leaves no outcome at all — which is exactly how the
    parent tells a crash from a failure.
    """
    import traceback

    heartbeat = _Heartbeat(os.path.join(spool, f"hb-{index}"))
    snap_path = os.path.join(spool, f"snap-{index}.json")
    try:
        from repro.snapshot.runner import execute_cell_resumable

        result = execute_cell_resumable(
            cell,
            retries=retries,
            timeout=timeout,
            snapshot_path=snap_path,
            snapshot_every=snapshot_every,
            heartbeat=heartbeat,
        )
        outcome: Dict[str, Any] = {"status": "ok", "result": result.to_dict()}
    except SimulationError as exc:
        outcome = {
            "status": "error",
            "payload": list(error_payload(exc, cell, retries)),
        }
    except BaseException as exc:  # noqa: BLE001 — the boundary
        outcome = {
            "status": "raise",
            "payload": [
                type(exc).__module__,
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
            ],
        }
    _atomic_write_json(os.path.join(spool, f"out-{index}.json"), outcome)


def _rebuild_raise(payload: List[Any]) -> BaseException:
    """Re-raise a worker's non-structured exception by imported type."""
    module_name, type_name, message, worker_traceback = payload
    try:
        import importlib

        exc_type = getattr(importlib.import_module(module_name), type_name)
        if not (
            isinstance(exc_type, type) and issubclass(exc_type, BaseException)
        ):
            raise TypeError
        exc = exc_type(message)
    except Exception:
        exc = RuntimeError(f"{module_name}.{type_name}: {message}")
    exc.worker_traceback = worker_traceback  # type: ignore[attr-defined]
    return exc


class _Worker:
    """Parent-side view of one cell's supervised process."""

    def __init__(self, index: int, cell: Cell):
        self.index = index
        self.cell = cell
        self.process: Any = None
        self.spawns = 0
        self.deadline = 0.0
        # When set, the worker crashed and its replacement spawns only
        # once this monotonic timestamp passes (restart backoff).
        self.respawn_at: Optional[float] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


Outcome = Tuple[str, Any]  # ("ok", SimulationResult) | ("error", payload)


class SupervisedPool:
    """Run sweep cells on supervised spawned workers.

    Parameters
    ----------
    jobs:
        Initial slot count (may shrink; see :class:`PoolHealth`).
    retries:
        Structured-error retries *inside* each worker (seed-perturbed),
        exactly as the serial path applies them.
    timeout:
        Per-attempt wall-clock bound inside the worker.
    restart_budget:
        Worker restarts per cell before the cell fails.
    stale_after:
        Heartbeat staleness (seconds) after which a live worker counts
        as hung and is killed.
    snapshot_every:
        Mid-cell snapshot period in simulated cycles.
    chaos:
        Optional callback invoked once per supervision tick with this
        pool — the chaos harness uses it to kill workers and corrupt
        spool files mid-sweep.  Production sweeps pass ``None``.
    on_outcome:
        Callback ``(index, status, payload)`` fired as each cell
        resolves (in completion order); the executor records
        checkpoint/cache entries here.
    """

    def __init__(
        self,
        jobs: int,
        *,
        retries: int = 0,
        timeout: Optional[float] = None,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        stale_after: float = DEFAULT_STALE_AFTER,
        snapshot_every: int = DEFAULT_SNAPSHOT_CYCLES,
        chaos: Optional[Callable[["SupervisedPool"], None]] = None,
        on_outcome: Optional[Callable[[int, str, Any], None]] = None,
        restart_backoff: Optional[Backoff] = None,
    ):
        self.retries = retries
        self.timeout = timeout
        self.restart_budget = max(0, restart_budget)
        self.stale_after = stale_after
        self.snapshot_every = snapshot_every
        self.chaos = chaos
        self.on_outcome = on_outcome
        # Crashed workers respawn after a decorrelated-jitter delay (a
        # host that just OOM-killed a worker will kill an instant
        # replacement too); the same policy serves the lease re-queue
        # in repro.serve.  Capped at 1s so chaos campaigns stay quick.
        self.restart_backoff = (
            restart_backoff
            if restart_backoff is not None
            else Backoff(base=0.05, cap=1.0, seed=0)
        )
        self.health = PoolHealth(jobs)
        self.active: Dict[int, _Worker] = {}
        self.spool: Optional[str] = None
        self.restarts = 0
        self.kills_for_staleness = 0

    # -- spool paths (also used by the chaos harness) -------------------

    def heartbeat_path(self, index: int) -> str:
        assert self.spool is not None
        return os.path.join(self.spool, f"hb-{index}")

    def snapshot_path(self, index: int) -> str:
        assert self.spool is not None
        return os.path.join(self.spool, f"snap-{index}.json")

    def outcome_path(self, index: int) -> str:
        assert self.spool is not None
        return os.path.join(self.spool, f"out-{index}.json")

    # -- supervision ----------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        worker.process = context.Process(
            target=_worker_entry,
            args=(
                worker.index,
                worker.cell,
                self.retries,
                self.timeout,
                self.spool,
                self.snapshot_every,
            ),
            daemon=True,
        )
        worker.spawns += 1
        # Staleness countdown starts at spawn: a worker that never
        # heartbeats at all must still trip the deadline eventually.
        worker.deadline = time.monotonic() + self.stale_after
        worker.process.start()
        if _log.ENABLED:
            self._worker_log(worker).debug(
                "worker_spawn", pid=worker.process.pid, spawns=worker.spawns
            )

    def _heartbeat_age(self, worker: _Worker) -> Optional[float]:
        """Seconds since the worker's last heartbeat, None if never."""
        try:
            mtime = os.path.getmtime(self.heartbeat_path(worker.index))
        except OSError:
            return None
        return max(0.0, time.time() - mtime)

    def _collect_outcome(self, worker: _Worker) -> Optional[Outcome]:
        path = self.outcome_path(worker.index)
        if not os.path.exists(path):
            return None
        # The outcome write is atomic, so an existing file is complete;
        # give the process a moment to actually exit before moving on.
        worker.process.join(timeout=10.0)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None  # torn by chaos mid-rename: treat as crash
        status = entry.get("status")
        if status == "ok":
            return "ok", SimulationResult.from_dict(entry["result"])
        if status == "error":
            return "error", tuple(entry["payload"])
        if status == "raise":
            raise _rebuild_raise(entry["payload"])
        return None

    def _worker_log(self, worker: _Worker) -> _log.RunLogger:
        """Pool logger bound with the worker's cell identity."""
        return _log.get_logger(
            "pool",
            slot=worker.index,
            cell=key_of(worker.cell)[:12],
            series=worker.cell.label,
            workload=worker.cell.workload,
        )

    def _crash_outcome(self, worker: _Worker, reason: str) -> Outcome:
        exit_code = worker.process.exitcode
        error = WorkerCrashed(
            f"cell {worker.cell.describe()}: worker {reason} "
            f"{worker.spawns} time(s) (last exit code {exit_code}); "
            f"restart budget of {self.restart_budget} exhausted",
            diagnostics={
                "cell_key": key_of(worker.cell),
                "series": worker.cell.label,
                "workload": worker.cell.workload,
                "spawns": worker.spawns,
                "exit_code": exit_code,
                "reason": reason,
            },
        )
        return "error", (
            "WorkerCrashed",
            str(error),
            error.diagnostics,
            worker.spawns,
        )

    def _resolve(self, worker: _Worker, outcome: Outcome) -> None:
        status, payload = outcome
        if status == "ok":
            self.health.on_success()
        if _log.ENABLED:
            log = self._worker_log(worker)
            if status == "ok":
                log.info("worker_done", status=status, spawns=worker.spawns)
            else:
                log.warning(
                    "worker_done",
                    status=status,
                    error=payload[0] if payload else None,
                    spawns=worker.spawns,
                )
        del self.active[worker.index]
        for path in (
            self.heartbeat_path(worker.index),
            self.outcome_path(worker.index),
            self.snapshot_path(worker.index),
        ):
            try:
                os.remove(path)
            except OSError:
                pass
        if self.on_outcome is not None:
            self.on_outcome(worker.index, status, payload)

    def _handle_crash(self, worker: _Worker, reason: str) -> None:
        self.health.on_crash()
        if worker.spawns > self.restart_budget:
            if _log.ENABLED:
                self._worker_log(worker).error(
                    "worker_crash",
                    reason=reason,
                    spawns=worker.spawns,
                    budget_exhausted=True,
                )
            self._resolve(worker, self._crash_outcome(worker, reason))
            return
        self.restarts += 1
        # Defer the respawn instead of sleeping: other workers stay
        # supervised while this slot backs off.
        delay = self.restart_backoff.next()
        worker.respawn_at = time.monotonic() + delay
        if _log.ENABLED:
            self._worker_log(worker).warning(
                "worker_crash",
                reason=reason,
                spawns=worker.spawns,
                respawn_in=round(delay, 3),
                slots=self.health.slots,
            )

    def run(self, cells: Sequence[Tuple[int, Cell]]) -> None:
        """Supervise every ``(index, cell)`` to an outcome.

        Raises :class:`PoolEnvironmentFailure` when worker processes die
        before their first heartbeat (the caller falls back to serial);
        cells already resolved by then have had their ``on_outcome``
        fired and are not re-run.
        """
        queue = list(cells)
        self.spool = tempfile.mkdtemp(prefix="repro-pool-")
        if _log.ENABLED:
            _log.get_logger("pool").info(
                "pool_start", cells=len(queue), slots=self.health.slots
            )
        try:
            while queue or self.active:
                while queue and len(self.active) < self.health.slots:
                    index, cell = queue.pop(0)
                    worker = _Worker(index, cell)
                    self.active[index] = worker
                    self._spawn(worker)
                if self.chaos is not None:
                    self.chaos(self)
                time.sleep(_TICK_SECONDS)
                for worker in list(self.active.values()):
                    if worker.respawn_at is not None:
                        if time.monotonic() >= worker.respawn_at:
                            worker.respawn_at = None
                            self._spawn(worker)
                        continue
                    outcome = self._collect_outcome(worker)
                    if outcome is not None:
                        self._resolve(worker, outcome)
                        continue
                    age = self._heartbeat_age(worker)
                    if worker.process.exitcode is not None:
                        if age is None:
                            raise PoolEnvironmentFailure(
                                f"worker for cell "
                                f"{worker.cell.describe()} died (exit "
                                f"code {worker.process.exitcode}) before "
                                f"its first heartbeat; spawning is broken"
                            )
                        self._handle_crash(worker, "died")
                        continue
                    stale = (
                        age > self.stale_after
                        if age is not None
                        else time.monotonic() > worker.deadline
                    )
                    if stale:
                        self.kills_for_staleness += 1
                        worker.process.kill()
                        worker.process.join(timeout=10.0)
                        self._handle_crash(worker, "hung")
        finally:
            for worker in self.active.values():
                if worker.process is not None:
                    worker.process.kill()
            for worker in self.active.values():
                if worker.process is not None:
                    worker.process.join(timeout=5.0)
            self.active.clear()
            if self.spool is not None:
                shutil.rmtree(self.spool, ignore_errors=True)
                self.spool = None
            if _log.ENABLED:
                _log.get_logger("pool").info(
                    "pool_drained",
                    restarts=self.restarts,
                    stale_kills=self.kills_for_staleness,
                    slots=self.health.slots,
                )
