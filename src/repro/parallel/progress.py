"""Live sweep progress: cells done/total, cache hits, workers, ETA.

Three channels, all optional and all observation-only:

- a rate-limited single-line report to a text stream (the CLI passes
  ``sys.stderr`` for parallel runs),
- :mod:`repro.obs` trace events when a tracer is installed —
  ``sweep_cell`` instants per completed cell and a ``sweep_progress``
  counter series (done / simulated / cache hits / in-flight workers)
  that renders as Perfetto counter tracks alongside the simulator's own
  timeline, and
- the unified :class:`repro.prof.registry.MetricsRegistry` — the
  ``sweep_cells_total`` counter (labeled by source), the
  ``sweep_in_flight`` gauge, and the ``sweep_cell_seconds`` histogram,
  which the bench harness snapshots into ``BENCH_<n>.json`` and the
  Prometheus exporter exposes.
"""

from __future__ import annotations

import time
from typing import Optional, TextIO

from repro.obs import events as _ev
from repro.obs import tracer as _trace
from repro.prof import registry as _registry

#: Where a completed cell's result came from.
SOURCE_SIMULATED = "simulated"
SOURCE_CACHE = "cache"
SOURCE_CHECKPOINT = "checkpoint"
SOURCE_FAILED = "failed"


class SweepProgress:
    """Accumulates cell completions and reports them."""

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.5,
        registry: Optional["_registry.MetricsRegistry"] = None,
    ):
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream
        self.min_interval_s = min_interval_s
        self.registry = registry if registry is not None else _registry.REGISTRY
        self.done = 0
        self.simulated = 0
        self.cache_hits = 0
        self.checkpoint_hits = 0
        self.failed = 0
        self.in_flight = 0
        self._started = time.monotonic()
        self._last_report = 0.0
        self._busy_s = 0.0

    # -- bookkeeping ---------------------------------------------------

    def launched(self, count: int = 1) -> None:
        """``count`` cells entered execution (serial or worker)."""
        self.in_flight += count
        self.registry.gauge(
            "sweep_in_flight", help="sweep cells currently executing"
        ).set(self.in_flight)

    def cell_done(
        self, source: str, cell_seconds: float = 0.0, label: str = ""
    ) -> None:
        """One cell finished; ``source`` is a ``SOURCE_*`` constant."""
        self.done += 1
        if source == SOURCE_SIMULATED:
            self.simulated += 1
        elif source == SOURCE_CACHE:
            self.cache_hits += 1
        elif source == SOURCE_CHECKPOINT:
            self.checkpoint_hits += 1
        elif source == SOURCE_FAILED:
            self.failed += 1
        if self.in_flight > 0 and source in (SOURCE_SIMULATED, SOURCE_FAILED):
            self.in_flight -= 1
        self._busy_s += cell_seconds
        registry = self.registry
        registry.counter(
            "sweep_cells_total",
            help="completed sweep cells by result source",
        ).inc(source=source)
        registry.gauge(
            "sweep_in_flight", help="sweep cells currently executing"
        ).set(self.in_flight)
        if source == SOURCE_SIMULATED:
            registry.histogram(
                "sweep_cell_seconds",
                help="wall-clock seconds per simulated sweep cell",
            ).observe(cell_seconds)
        if _trace.ENABLED:
            _trace.emit(
                _ev.SWEEP_CELL,
                cycle=0,
                core=-1,
                track="sweep",
                source=source,
                cell=label,
            )
            _trace.emit(
                _ev.SWEEP_PROGRESS,
                cycle=self.done,
                core=-1,
                track="sweep",
                done=self.done,
                total=self.total,
                simulated=self.simulated,
                cache_hits=self.cache_hits,
                checkpoint_hits=self.checkpoint_hits,
                failed=self.failed,
                in_flight=self.in_flight,
            )
        self.report()

    # -- derived numbers ----------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def utilization(self) -> float:
        """Mean fraction of the pool kept busy so far (0..1)."""
        wall = self.elapsed_s
        if wall <= 0:
            return 0.0
        return min(1.0, self._busy_s / (wall * self.jobs))

    def eta_s(self) -> Optional[float]:
        """Projected remaining seconds, once at least one cell ran."""
        ran = self.simulated + self.failed
        if ran == 0:
            return None
        remaining = self.total - self.done
        per_cell = self._busy_s / ran
        return remaining * per_cell / self.jobs

    # -- rendering -----------------------------------------------------

    def _line(self) -> str:
        bits = [f"[sweep] {self.done}/{self.total} cells"]
        reused = self.cache_hits + self.checkpoint_hits
        if reused:
            bits.append(f"{reused} reused")
        if self.failed:
            bits.append(f"{self.failed} failed")
        if self.jobs > 1:
            bits.append(
                f"{self.jobs} workers {self.utilization():.0%} busy"
            )
        bits.append(f"{self.elapsed_s:.1f}s elapsed")
        eta = self.eta_s()
        if eta is not None and self.done < self.total:
            bits.append(f"eta {eta:.1f}s")
        return " · ".join(bits)

    def report(self, force: bool = False) -> None:
        """Write the progress line (rate-limited unless ``force``)."""
        if self.stream is None:
            return
        now = time.monotonic()
        finished = self.done >= self.total
        if not force and not finished:
            if now - self._last_report < self.min_interval_s:
                return
        self._last_report = now
        self.stream.write(self._line() + "\n")
        try:
            self.stream.flush()
        except (OSError, ValueError):
            pass
