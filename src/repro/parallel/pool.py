"""The sweep executor: serial or multiprocess, one determinism contract.

:class:`SweepExecutor` runs a list of :class:`~repro.parallel.cells.Cell`
and returns their results *in cell order*, regardless of completion
order.  Every cell is resolved through the same three-stage pipeline:

1. **checkpoint** — a cell already recorded in the
   :class:`repro.harness.checkpoint.SweepCheckpoint` (under its
   hash-based key, or the pre-hash legacy key of old files) is reused;
2. **cache** — a content-identical simulation from any earlier sweep or
   figure found in the :class:`repro.parallel.cache.ResultCache` is
   reused (and recorded to the checkpoint);
3. **simulate** — everything else executes via
   :func:`repro.parallel.cells.execute_cell` (bounded retries with
   perturbed fault seeds, per-attempt wall-clock guard), either inline
   (``jobs <= 1``) or on a spawned worker pool.

Determinism contract: parallel and serial execution produce
byte-identical results.  Cells are self-contained (config embeds the
fault seed), workers are spawned fresh (no inherited tracer or RNG
state), results return whole over the pool's queue, and only the parent
process ever writes the checkpoint or assembles output — so nothing can
depend on scheduling order.  ``tests/parallel/`` pins this on real
figures.

Failure semantics: the serial path aborts at the first failing cell
(recording it first), matching the pre-parallel harness.  The parallel
path lets in-flight cells finish and record, then raises the error of
the *earliest* failed cell — so a resume loses no completed work and
the raised error does not depend on worker timing.
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TextIO,
)

from repro.core.results import SimulationResult
from repro.faults.errors import SimulationError
from repro.parallel import progress as _progress
from repro.parallel.cache import ResultCache
from repro.parallel.cells import Cell, execute_cell, rebuild_error
from repro.parallel.progress import SweepProgress
from repro.parallel.supervisor import (
    DEFAULT_RESTART_BUDGET,
    DEFAULT_SNAPSHOT_CYCLES,
    DEFAULT_STALE_AFTER,
    PoolEnvironmentFailure,
    SupervisedPool,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.checkpoint import SweepCheckpoint


def _keys():
    """The checkpoint key functions, imported lazily.

    ``repro.harness`` imports this module (via ``experiment``); loading
    ``repro.harness.checkpoint`` at our import time would close that
    cycle — which only bites in spawned workers, where unpickling the
    pool entry point imports ``repro.parallel`` first.
    """
    from repro.harness.checkpoint import cell_key, legacy_cell_key

    return cell_key, legacy_cell_key


def default_jobs() -> int:
    """The CLI default worker count: every core the host offers."""
    return os.cpu_count() or 1


class SweepExecutor:
    """Executes sweep cells against a checkpoint, cache, and pool."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        cache: Optional[ResultCache] = None,
        retries: int = 0,
        timeout: Optional[float] = None,
        progress_stream: Optional[TextIO] = None,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        stale_after: float = DEFAULT_STALE_AFTER,
        snapshot_every: int = DEFAULT_SNAPSHOT_CYCLES,
        chaos: Optional[Callable[[SupervisedPool], None]] = None,
    ):
        self.jobs = max(1, jobs if jobs is not None else 1)
        self.checkpoint = checkpoint
        self.cache = cache
        self.retries = max(0, retries)
        self.timeout = timeout
        self.progress_stream = progress_stream
        # Supervision knobs (parallel path only): worker restarts per
        # cell, heartbeat staleness before a kill, mid-cell snapshot
        # period, and the chaos harness's fault-injection hook.
        self.restart_budget = restart_budget
        self.stale_after = stale_after
        self.snapshot_every = snapshot_every
        self.chaos = chaos

    # -- lookup helpers ------------------------------------------------

    def _checkpoint_lookup(self, cell: Cell) -> Optional[SimulationResult]:
        if self.checkpoint is None:
            return None
        cell_key, legacy_cell_key = _keys()
        key = cell_key(
            cell.label, cell.workload, cell.config, cell.form, cell.miss_scale
        )
        found = self.checkpoint.get(key)
        if found is not None:
            return found
        # Checkpoint files written before hash-based keys recorded cells
        # under the config *description*; honor them so old sweeps
        # resume instead of restarting.
        legacy = legacy_cell_key(
            cell.label,
            cell.workload,
            cell.config.describe(),
            cell.form,
            cell.miss_scale,
        )
        return self.checkpoint.get(legacy)

    def _record_ok(self, cell: Cell, result: SimulationResult) -> None:
        if self.checkpoint is not None:
            cell_key, _ = _keys()
            key = cell_key(
                cell.label,
                cell.workload,
                cell.config,
                cell.form,
                cell.miss_scale,
            )
            self.checkpoint.record(key, result)

    def _record_failure(
        self, cell: Cell, error: SimulationError, attempts: int
    ) -> None:
        if self.checkpoint is not None:
            cell_key, _ = _keys()
            key = cell_key(
                cell.label,
                cell.workload,
                cell.config,
                cell.form,
                cell.miss_scale,
            )
            self.checkpoint.record_failure(key, error, attempts)

    # -- execution -----------------------------------------------------

    def run(self, cells: Sequence[Cell]) -> List[SimulationResult]:
        """Resolve every cell; results align with ``cells`` by index."""
        progress = SweepProgress(
            total=len(cells), jobs=self.jobs, stream=self.progress_stream
        )
        results: List[Optional[SimulationResult]] = [None] * len(cells)
        pending: List[int] = []
        for index, cell in enumerate(cells):
            found = self._checkpoint_lookup(cell)
            if found is not None:
                results[index] = found
                progress.cell_done(
                    _progress.SOURCE_CHECKPOINT, label=cell.describe()
                )
                continue
            if self.cache is not None:
                cached = self.cache.get(cell)
                if cached is not None:
                    results[index] = cached
                    self._record_ok(cell, cached)
                    progress.cell_done(
                        _progress.SOURCE_CACHE, label=cell.describe()
                    )
                    continue
            pending.append(index)
        if pending:
            if self.jobs <= 1 or len(pending) == 1:
                self._run_serial(cells, pending, results, progress)
            else:
                self._run_parallel(cells, pending, results, progress)
        progress.report(force=True)
        return results  # type: ignore[return-value]

    def _finish_ok(
        self,
        cell: Cell,
        result: SimulationResult,
        seconds: float,
        progress: SweepProgress,
    ) -> None:
        self._record_ok(cell, result)
        if self.cache is not None:
            self.cache.put(cell, result)
        progress.cell_done(
            _progress.SOURCE_SIMULATED,
            cell_seconds=seconds,
            label=cell.describe(),
        )

    def _run_serial(
        self,
        cells: Sequence[Cell],
        pending: List[int],
        results: List[Optional[SimulationResult]],
        progress: SweepProgress,
    ) -> None:
        for index in pending:
            cell = cells[index]
            progress.launched()
            started = time.monotonic()
            try:
                result = execute_cell(
                    cell, retries=self.retries, timeout=self.timeout
                )
            except SimulationError as exc:
                attempts = int(exc.diagnostics.get("attempts", self.retries + 1))
                self._record_failure(cell, exc, attempts)
                progress.cell_done(
                    _progress.SOURCE_FAILED,
                    cell_seconds=time.monotonic() - started,
                    label=cell.describe(),
                )
                raise
            results[index] = result
            self._finish_ok(
                cell, result, time.monotonic() - started, progress
            )

    def _run_parallel(
        self,
        cells: Sequence[Cell],
        pending: List[int],
        results: List[Optional[SimulationResult]],
        progress: SweepProgress,
    ) -> None:
        # Spawned (not forked) workers: each starts from a clean
        # interpreter, so no tracer/RNG/file-handle state leaks from the
        # parent and results cannot depend on inherited globals.  The
        # SupervisedPool additionally heartbeats, snapshots, and
        # restarts killed/hung workers (see repro.parallel.supervisor).
        errors: Dict[int, SimulationError] = {}
        started_at: Dict[int, float] = {}

        def on_outcome(index: int, status: str, payload) -> None:
            cell = cells[index]
            seconds = time.monotonic() - started_at[index]
            if status == "ok":
                results[index] = payload
                self._finish_ok(cell, payload, seconds, progress)
                return
            type_name, message, diagnostics, attempts = payload
            error = rebuild_error(type_name, message, diagnostics)
            errors[index] = error
            self._record_failure(cell, error, attempts)
            progress.cell_done(
                _progress.SOURCE_FAILED,
                cell_seconds=seconds,
                label=cell.describe(),
            )

        pool = SupervisedPool(
            min(self.jobs, len(pending)),
            retries=self.retries,
            timeout=self.timeout,
            restart_budget=self.restart_budget,
            stale_after=self.stale_after,
            snapshot_every=self.snapshot_every,
            chaos=self.chaos,
            on_outcome=on_outcome,
        )
        for index in pending:
            started_at[index] = time.monotonic()
            progress.launched()
        try:
            pool.run([(index, cells[index]) for index in pending])
        except PoolEnvironmentFailure:
            # Spawned workers re-import __main__; scripts fed via stdin
            # or ``python -c`` have none to import, and a host can kill
            # workers faster than they can heartbeat.  Cells are
            # idempotent, so finish the unresolved ones inline rather
            # than losing the sweep.
            warnings.warn(
                "worker pool died (unimportable __main__ or killed "
                "worker); finishing remaining cells serially",
                RuntimeWarning,
                stacklevel=2,
            )
            remaining = [
                index
                for index in pending
                if results[index] is None and index not in errors
            ]
            self._run_serial(cells, remaining, results, progress)
        if errors:
            raise errors[min(errors)]


def build_progress_stream(jobs: int, quiet: bool = False) -> Optional[TextIO]:
    """stderr for multi-worker sweeps, None otherwise (or when quiet)."""
    if quiet or jobs <= 1:
        return None
    return sys.stderr
