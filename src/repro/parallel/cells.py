"""Sweep cells: the picklable unit of work the pool fans out.

A :class:`Cell` is one fully-materialized (config, workload) point of a
sweep matrix — unlike the zero-argument config *factories* the figure
drivers pass around (closures do not pickle), a cell carries the frozen
:class:`GPUConfig` itself, so the parent can ship it to a spawned worker
unchanged.  Determinism hangs on this: a cell is self-contained (its
config embeds the fault seed), so its result is a pure function of the
cell and never of which worker ran it or in what order.

:func:`execute_cell` is the single execution path shared by the serial
sweep, the in-process fallback, and the worker processes: bounded
retries with seed perturbation on structured simulator errors (PR 2
semantics), each attempt under a wall-clock
:func:`repro.faults.watchdog.wall_clock_guard`.
"""

from __future__ import annotations

import dataclasses as _dc
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.config import GPUConfig
from repro.core.results import SimulationResult
from repro.faults import errors as _errors
from repro.faults.errors import SimulationError
from repro.faults.watchdog import wall_clock_guard
from repro.parallel.backoff import Backoff, for_cell_retries


@dataclass(frozen=True)
class Cell:
    """One (config, workload) sweep point, ready to execute anywhere."""

    label: str
    workload: str
    config: GPUConfig
    form: Optional[str] = None
    miss_scale: float = 1.0

    def describe(self) -> str:
        """Short human-readable identity for progress lines and errors."""
        return f"{self.label}/{self.workload}"


def reseeded(config: GPUConfig, attempt: int) -> GPUConfig:
    """Perturb the fault seed for retry ``attempt`` (0 = as configured).

    Deterministic injection would otherwise replay the identical
    failure on every retry.
    """
    if attempt == 0 or not config.faults.enabled:
        return config
    faults = _dc.replace(config.faults, seed=config.faults.seed + attempt)
    return _dc.replace(config, faults=faults)


def simulate_cell(cell: Cell, attempt: int = 0) -> SimulationResult:
    """Simulate one attempt of ``cell`` (the monkeypatchable seam)."""
    from repro.api import simulate

    return simulate(
        config=reseeded(cell.config, attempt),
        workload=cell.workload,
        form=cell.form,
        miss_scale=cell.miss_scale,
    )


def execute_cell(
    cell: Cell,
    retries: int = 0,
    timeout: Optional[float] = None,
    backoff: Optional[Backoff] = None,
) -> SimulationResult:
    """Run ``cell`` with retries and a per-attempt wall-clock bound.

    Failed attempts back off with decorrelated jitter before retrying
    (``backoff``; the default :func:`~repro.parallel.backoff.for_cell_retries`
    policy is seeded from the cell's fault seed so sibling cells
    de-correlate).  Raises the final :class:`SimulationError` — with
    series/workload/attempt context attached — once every attempt has
    failed; any non-structured exception propagates immediately.
    """
    attempts = retries + 1
    if backoff is None and retries > 0:
        backoff = for_cell_retries(seed=cell.config.faults.seed)
    last_error: Optional[SimulationError] = None
    for attempt in range(attempts):
        try:
            with wall_clock_guard(timeout or 0.0, label=cell.describe()):
                return simulate_cell(cell, attempt)
        except SimulationError as exc:
            last_error = exc
            if attempt + 1 < attempts and backoff is not None:
                backoff.sleep()
    assert last_error is not None
    last_error.add_context(
        series=cell.label, workload=cell.workload, attempts=attempts
    )
    raise last_error


# -- worker-process protocol ------------------------------------------
#
# Structured errors do not survive pickling intact (their diagnostics
# ride on an attribute, not on BaseException.args), so workers never let
# exceptions cross the pool: every outcome is an explicit tuple the
# parent folds back into results or reconstructed errors.

#: Error classes a worker may report, by name (the pickle-safe channel).
_ERROR_TYPES = {
    name: getattr(_errors, name)
    for name in (
        "SimulationError",
        "SimulationHang",
        "PTWError",
        "WalkTimeout",
        "CellTimeout",
        "InvariantViolation",
        "WorkerCrashed",
    )
}


def key_of(cell: Cell) -> str:
    """The cell's checkpoint identity (label, workload, config hash)."""
    from repro.harness.checkpoint import cell_key

    return cell_key(
        cell.label, cell.workload, cell.config, cell.form, cell.miss_scale
    )


def error_payload(
    exc: SimulationError, cell: Cell, retries: int
) -> Tuple[str, str, Dict[str, Any], int]:
    """The picklable ``(type, message, diagnostics, attempts)`` form of a
    structured worker failure.

    The diagnostics gain the original traceback string and the cell's
    checkpoint key (which embeds the config hash) before crossing the
    process boundary, so an error rebuilt in the parent still names the
    worker-side raise site and the exact cell that poisoned the sweep.
    """
    import traceback

    diagnostics: Dict[str, Any] = dict(exc.diagnostics)
    diagnostics.setdefault("worker_traceback", traceback.format_exc())
    diagnostics.setdefault("cell_key", key_of(cell))
    attempts = int(diagnostics.get("attempts", retries + 1))
    return (type(exc).__name__, str(exc), diagnostics, attempts)


def run_cell_in_worker(
    payload: Tuple[int, Cell, int, Optional[float]]
) -> Tuple[int, str, Any]:
    """Pool entry point: execute one cell, report a picklable outcome.

    Returns ``(index, "ok", SimulationResult)`` or
    ``(index, "error", (type_name, message, diagnostics, attempts))``.
    """
    index, cell, retries, timeout = payload
    try:
        result = execute_cell(cell, retries=retries, timeout=timeout)
    except SimulationError as exc:
        return index, "error", error_payload(exc, cell, retries)
    return index, "ok", result


def rebuild_error(
    type_name: str, message: str, diagnostics: Dict[str, Any]
) -> SimulationError:
    """Reconstruct a worker-reported error in the parent process."""
    error_cls = _ERROR_TYPES.get(type_name, SimulationError)
    return error_cls(message, diagnostics=diagnostics)
