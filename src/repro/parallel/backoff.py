"""Decorrelated-jitter exponential backoff, shared by every retry path.

Immediate retry is the worst possible response to a correlated failure:
a host under memory pressure that just killed a worker will kill its
instant replacement too, and a thundering herd of sweep cells retrying
in lockstep re-creates the very contention that failed them.  The fix
everybody converges on (see the AWS architecture blog's "Exponential
Backoff And Jitter") is *decorrelated jitter*::

    delay = min(cap, uniform(base, previous_delay * 3))

which grows roughly exponentially, never synchronizes two independent
retriers, and stays bounded by ``cap``.

:class:`Backoff` packages that policy behind a seeded RNG so tests (and
the chaos campaign) see reproducible delay sequences.  It is shared by:

- :func:`repro.parallel.cells.execute_cell` — sleeps between per-cell
  retry attempts (previously immediate);
- :class:`repro.parallel.supervisor.SupervisedPool` — delays worker
  respawns after a crash/hang;
- :class:`repro.serve.leases.LeaseTable` — schedules the re-queue of an
  expired lease (``not_before`` timestamps rather than sleeps).

Delays only shape *when* work re-runs, never *what* it computes, so the
byte-identity guarantees are untouched.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

__all__ = ["Backoff", "DEFAULT_BASE", "DEFAULT_CAP"]

#: Default first-delay lower bound, seconds.  Small on purpose: local
#: retries mostly fight transient scheduling noise, not remote outages.
DEFAULT_BASE = 0.05

#: Default delay ceiling, seconds.
DEFAULT_CAP = 2.0


class Backoff:
    """A seeded decorrelated-jitter delay sequence.

    Parameters
    ----------
    base:
        Lower bound of every delay (also the first delay's floor).  A
        non-positive base disables the policy: :meth:`next` returns
        0.0 forever and :meth:`sleep` never blocks.
    cap:
        Upper bound every delay is clamped to.
    seed:
        RNG seed; the same seed replays the same delay sequence, which
        is how tests pin scheduling-adjacent behavior without clocks.
    sleep:
        Injectable sleeper for :meth:`sleep` (tests pass a recorder).
    """

    def __init__(
        self,
        base: float = DEFAULT_BASE,
        cap: float = DEFAULT_CAP,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if cap < base:
            raise ValueError(f"backoff cap {cap} is below base {base}")
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._previous = base
        self.attempts = 0

    def next(self) -> float:
        """The next delay in seconds (0.0 when the policy is disabled)."""
        self.attempts += 1
        if self.base <= 0:
            return 0.0
        delay = min(self.cap, self._rng.uniform(self.base, self._previous * 3))
        self._previous = delay
        return delay

    def sleep(self) -> None:
        """Block for :meth:`next` seconds (no-op when disabled)."""
        delay = self.next()
        if delay > 0:
            self._sleep(delay)

    def reset(self) -> None:
        """Forget accumulated growth; the next delay starts from base."""
        self._previous = self.base
        self.attempts = 0


def for_cell_retries(seed: int = 0) -> Optional[Backoff]:
    """The default retry backoff for sweep cells.

    Kept short (base 50 ms, cap 2 s): cell retries are in-process and
    deterministic apart from the perturbed fault seed, so the delay is
    about de-correlating siblings, not waiting out an outage.
    """
    return Backoff(base=DEFAULT_BASE, cap=DEFAULT_CAP, seed=seed)
