"""Parallel sweep execution: worker pool, result cache, progress.

The paper's figures are (config, workload) matrices whose cells are
embarrassingly parallel; this package fans them out to a multiprocess
pool while keeping the output *byte-identical* to a serial run:

- :mod:`repro.parallel.cells` — the picklable unit of work and the
  shared retry/timeout execution path;
- :mod:`repro.parallel.cache` — a content-addressed result cache keyed
  by canonical config hash + workload + code-version salt, so reruns
  and overlapping figures skip already-simulated cells;
- :mod:`repro.parallel.pool` — :class:`SweepExecutor`, the
  checkpoint-integrated serial/parallel engine (single-writer parent,
  spawned workers, earliest-cell failure semantics);
- :mod:`repro.parallel.progress` — live cells/cache/worker/ETA
  reporting through a stream and :mod:`repro.obs` events.

Entry points: ``python -m repro.harness <figure> --jobs N`` on the
command line, ``jobs=`` on :func:`repro.api.sweep` /
:func:`repro.api.figure`, or :func:`repro.harness.experiment.sweep_session`
for ambient configuration of existing figure drivers.
"""

from repro.parallel.cache import SIMULATION_VERSION, ResultCache, cache_key
from repro.parallel.cells import Cell, execute_cell, reseeded
from repro.parallel.pool import SweepExecutor, default_jobs
from repro.parallel.progress import SweepProgress

__all__ = [
    "Cell",
    "ResultCache",
    "SIMULATION_VERSION",
    "SweepExecutor",
    "SweepProgress",
    "cache_key",
    "default_jobs",
    "execute_cell",
    "reseeded",
]
