"""The per-shader-core set-associative TLB.

One TLB is shared by all SIMD lanes of a shader core (Section 6.2).
Entries map virtual page numbers to physical frame numbers with true LRU
within each set.  Two paper-specific extensions live here:

- **LRU-depth reporting** — TCWS weights TLB *hits* by how deep in the
  set's LRU stack they land (Section 7.2), so lookups report their depth
  (0 = MRU).
- **Warp history** — each entry remembers the last two warps that hit
  it, mirroring the 12 spare PTE bits the paper borrows; TLB-aware TBC's
  Common Page Matrix is updated from this history on every hit
  (Section 8.2, Figure 21).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import events as _ev
from repro.obs import tracer as _trace
from repro.prof import profiler as _prof
from repro.vm.pte import HISTORY_LENGTH


class TLBLookup:
    """Outcome of a TLB lookup.

    A plain ``__slots__`` value object — one is built per probed page on
    the simulator's hottest path.

    Attributes
    ----------
    hit:
        Whether the translation was resident.
    pfn:
        Physical frame number on a hit, else None.
    lru_depth:
        Depth in the set's LRU stack on a hit (0 = most recent), else None.
    prior_history:
        Warps that had hit this entry before this lookup (most recent
        first); empty on a miss.  Feeds the Common Page Matrix.
    """

    __slots__ = ("hit", "pfn", "lru_depth", "prior_history")

    def __init__(
        self,
        hit: bool,
        pfn: Optional[int] = None,
        lru_depth: Optional[int] = None,
        prior_history: Tuple[int, ...] = (),
    ):
        self.hit = hit
        self.pfn = pfn
        self.lru_depth = lru_depth
        self.prior_history = prior_history

    def __eq__(self, other):
        return (
            isinstance(other, TLBLookup)
            and self.hit == other.hit
            and self.pfn == other.pfn
            and self.lru_depth == other.lru_depth
            and self.prior_history == other.prior_history
        )

    def __repr__(self):
        return (
            f"TLBLookup(hit={self.hit}, pfn={self.pfn}, "
            f"lru_depth={self.lru_depth}, prior_history={self.prior_history})"
        )


#: Shared miss outcome: misses carry no payload, so every miss can
#: return the same immutable-by-convention instance.
_MISS = TLBLookup(hit=False)


@dataclass(frozen=True)
class TLBEviction:
    """A translation displaced by a fill.

    ``owner`` is the warp that most recently hit the entry (None when it
    was never hit after filling) — the warp whose locality was lost,
    and hence whose victim tag array TCWS records the page in.
    """

    vpn: int
    owner: Optional[int]


class _TLBEntry:
    __slots__ = ("vpn", "pfn", "history")

    def __init__(self, vpn: int, pfn: int, history: Optional[List[int]] = None):
        self.vpn = vpn
        self.pfn = pfn
        self.history = [] if history is None else history


class SetAssociativeTLB:
    """A set-associative, LRU TLB indexed by virtual page number.

    Parameters
    ----------
    entries:
        Total entry count (the paper's default is 128).
    associativity:
        Ways per set (the paper's TCWS study assumes 4-way).
    ports:
        Simultaneous lookups per cycle.  Port arbitration is enforced by
        the shader core's memory unit; the TLB records the count so the
        core can compute occupancy.
    """

    def __init__(self, entries: int = 128, associativity: int = 4, ports: int = 4):
        if entries <= 0 or associativity <= 0 or ports <= 0:
            raise ValueError("TLB geometry must be positive")
        if entries % associativity:
            raise ValueError(
                f"{entries} entries does not divide into {associativity}-way sets"
            )
        self.entries = entries
        self.associativity = associativity
        self.ports = ports
        self.num_sets = entries // associativity
        # Per set: insertion-ordered dict vpn -> entry, oldest (LRU) first.
        self._sets: Dict[int, Dict[int, _TLBEntry]] = {}
        self.hits = 0
        self.misses = 0

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    def lookup(self, vpn: int, warp_id: Optional[int] = None) -> TLBLookup:
        """Look up a translation, updating LRU and warp history on a hit."""
        if _prof.ENABLED:
            _prof.begin(_prof.PHASE_TLB)
        tlb_set = self._sets.get(self._set_index(vpn))
        if tlb_set is None or vpn not in tlb_set:
            self.misses += 1
            if _trace.ENABLED:
                _trace.emit(
                    _ev.TLB_LOOKUP, track="tlb", vpn=vpn, hit=False, warp=warp_id
                )
            if _prof.ENABLED:
                _prof.end()
            return _MISS
        self.hits += 1
        # Depth from the MRU end: walk newest-to-oldest until the hit.
        depth_from_mru = 0
        for resident_vpn in reversed(tlb_set):
            if resident_vpn == vpn:
                break
            depth_from_mru += 1
        entry = tlb_set.pop(vpn)
        prior_history = tuple(entry.history)
        if warp_id is not None:
            if warp_id in entry.history:
                entry.history.remove(warp_id)
            entry.history.insert(0, warp_id)
            del entry.history[HISTORY_LENGTH:]
        tlb_set[vpn] = entry  # move to MRU
        if _trace.ENABLED:
            _trace.emit(
                _ev.TLB_LOOKUP,
                track="tlb",
                vpn=vpn,
                hit=True,
                depth=depth_from_mru,
                warp=warp_id,
            )
        if _prof.ENABLED:
            _prof.end()
        return TLBLookup(
            hit=True,
            pfn=entry.pfn,
            lru_depth=depth_from_mru,
            prior_history=prior_history,
        )

    def probe(self, vpn: int) -> bool:
        """Check residency without disturbing LRU, history, or counters."""
        tlb_set = self._sets.get(self._set_index(vpn))
        return tlb_set is not None and vpn in tlb_set

    def fill(self, vpn: int, pfn: int, warp_id: Optional[int] = None) -> Optional[TLBEviction]:
        """Install a translation; return the eviction it caused, if any.

        The evicted page and its owning warp feed TCWS's page-grain
        victim tag arrays.
        """
        index = self._set_index(vpn)
        tlb_set = self._sets.setdefault(index, {})
        if vpn in tlb_set:
            entry = tlb_set.pop(vpn)
            entry.pfn = pfn
            tlb_set[vpn] = entry
            return None
        eviction = None
        if len(tlb_set) >= self.associativity:
            evicted_vpn = next(iter(tlb_set))
            victim = tlb_set.pop(evicted_vpn)
            owner = victim.history[0] if victim.history else None
            eviction = TLBEviction(vpn=evicted_vpn, owner=owner)
        history = [warp_id] if warp_id is not None else []
        tlb_set[vpn] = _TLBEntry(vpn=vpn, pfn=pfn, history=history)
        return eviction

    def flush(self) -> None:
        """Invalidate all entries (TLB shootdown, Section 6.2)."""
        self._sets.clear()

    def invalidate(self, vpn: int) -> bool:
        """Invalidate one translation (targeted shootdown / injected
        invalidation); return whether it was resident."""
        tlb_set = self._sets.get(self._set_index(vpn))
        if tlb_set is None or vpn not in tlb_set:
            return False
        del tlb_set[vpn]
        return True

    def state_dict(self) -> dict:
        """Snapshot sets (LRU order preserved), counters, histories."""
        return {
            "sets": [
                [index, [[e.vpn, e.pfn, list(e.history)] for e in tlb_set.values()]]
                for index, tlb_set in self._sets.items()
            ],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        self._sets = {
            index: {
                vpn: _TLBEntry(vpn=vpn, pfn=pfn, history=list(history))
                for vpn, pfn, history in entries
            }
            for index, entries in state["sets"]
        }
        self.hits = state["hits"]
        self.misses = state["misses"]

    @property
    def resident(self) -> int:
        """Number of translations currently held."""
        return sum(len(s) for s in self._sets.values())

    @property
    def miss_rate(self) -> float:
        """Miss rate observed so far."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
