"""TLB substrate: the per-shader-core translation lookaside buffer.

Contains the set-associative TLB itself (with per-entry warp history for
the TLB-aware TBC hardware), the CACTI-like access-latency model used to
penalize oversized or over-ported designs, per-warp-thread TLB MSHRs,
and the victim tag arrays shared by the CCWS scheduler family.
"""

from repro.tlb.cacti import access_latency, is_practical
from repro.tlb.tlb import TLBEviction, TLBLookup, SetAssociativeTLB
from repro.tlb.victim_array import VictimTagArray

__all__ = [
    "access_latency",
    "is_practical",
    "TLBEviction",
    "TLBLookup",
    "SetAssociativeTLB",
    "VictimTagArray",
]
