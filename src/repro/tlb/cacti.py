"""Access-latency model for TLB size and port count (CACTI substitute).

The paper sized TLBs with CACTI 6.0 and found that 128-entry TLBs are
"the largest possible structures that do not increase the access time of
32 KB GPU L1 data caches" (Section 6.2), and that 3-or-4-ported 128-entry
designs are practical while "TLBs larger than 128 entries and 4 ports are
impractical to implement and actually have much higher access times that
degrade performance" (Figure 6 caption).  CACTI itself is closed tooling
we cannot ship, so we encode that finding as a lookup table: extra cycles
charged on *every* TLB access, growing with capacity beyond 128 entries
and port count beyond 4.  Only the relative ordering matters for the
reproduction — the table makes 128-entry/4-port the latency knee, exactly
as the paper reports.
"""

from __future__ import annotations

#: Extra pipeline cycles charged per access, by capacity (entries).
_SIZE_PENALTY = {64: 0, 128: 0, 256: 8, 512: 20, 1024: 40}

#: Extra pipeline cycles charged per access, by read port count.
_PORT_PENALTY = {1: 0, 2: 0, 3: 0, 4: 0, 8: 6, 16: 12, 32: 24}

#: The practical envelope the paper identifies.
_MAX_PRACTICAL_ENTRIES = 128
_MAX_PRACTICAL_PORTS = 4


def access_latency(entries: int, ports: int, ideal: bool = False) -> int:
    """Extra cycles a TLB access costs beyond the L1-parallel window.

    A zero means the TLB lookup fully overlaps L1 set selection (the
    virtually-indexed, physically-tagged arrangement of Figure 5).
    ``ideal=True`` models the paper's "impractical" comparison point —
    a 512-entry, 32-port TLB *with no access latency penalty*.
    """
    if ideal:
        return 0
    size_penalty = _SIZE_PENALTY.get(entries)
    if size_penalty is None:
        size_penalty = max(
            (penalty for size, penalty in _SIZE_PENALTY.items() if size <= entries),
            default=0,
        )
        if entries > max(_SIZE_PENALTY):
            size_penalty = _SIZE_PENALTY[max(_SIZE_PENALTY)] + 20
    port_penalty = _PORT_PENALTY.get(ports)
    if port_penalty is None:
        port_penalty = max(
            (penalty for count, penalty in _PORT_PENALTY.items() if count <= ports),
            default=0,
        )
        if ports > max(_PORT_PENALTY):
            port_penalty = _PORT_PENALTY[max(_PORT_PENALTY)] + 12
    return size_penalty + port_penalty


def is_practical(entries: int, ports: int) -> bool:
    """Whether a design is inside the paper's implementable envelope."""
    return entries <= _MAX_PRACTICAL_ENTRIES and ports <= _MAX_PRACTICAL_PORTS
