"""Per-warp victim tag arrays for the CCWS scheduler family.

CCWS keeps a small set-associative tag array per warp recording recently
evicted cache lines; a miss that hits in its own warp's VTA signals
*lost intra-warp locality* (Section 7.1, Figure 12).  TCWS reuses the
same structure at page granularity, fed by TLB evictions instead of
cache evictions — pages being 32× coarser than lines, half the hardware
suffices (Section 7.2, Figure 15).

Tags here are whatever granule the caller evicts (line addresses for
CCWS, virtual page numbers for TCWS); the array itself is granule
agnostic.
"""

from __future__ import annotations

from typing import Dict


class VictimTagArray:
    """Per-warp set-associative victim tag store with LRU replacement.

    Parameters
    ----------
    num_warps:
        Number of warps (one private array each).
    entries_per_warp:
        Total tags retained per warp (the paper's CCWS baseline uses 16;
        TCWS sweeps 2–16 in Figure 17).
    associativity:
        Ways per set (paper: 8-way).  When ``entries_per_warp`` is below
        the associativity the array degenerates to fully associative.
    """

    def __init__(self, num_warps: int, entries_per_warp: int = 16, associativity: int = 8):
        if num_warps <= 0 or entries_per_warp <= 0:
            raise ValueError("VTA geometry must be positive")
        self.num_warps = num_warps
        self.entries_per_warp = entries_per_warp
        self.associativity = min(associativity, entries_per_warp)
        if entries_per_warp % self.associativity:
            raise ValueError(
                f"{entries_per_warp} entries per warp does not divide into "
                f"{self.associativity}-way sets"
            )
        self.num_sets = entries_per_warp // self.associativity
        # arrays[warp][set] = insertion-ordered dict of tags (LRU first).
        self._arrays: Dict[int, Dict[int, Dict[int, None]]] = {}
        self.probes = 0
        self.probe_hits = 0

    def _set_of(self, warp_id: int, tag: int) -> Dict[int, None]:
        warp_sets = self._arrays.setdefault(warp_id, {})
        return warp_sets.setdefault(tag % self.num_sets, {})

    def insert(self, warp_id: int, tag: int) -> None:
        """Record that ``tag`` was just evicted from warp ``warp_id``."""
        vta_set = self._set_of(warp_id, tag)
        if tag in vta_set:
            del vta_set[tag]
        elif len(vta_set) >= self.associativity:
            del vta_set[next(iter(vta_set))]
        vta_set[tag] = None

    def probe(self, warp_id: int, tag: int) -> bool:
        """On a miss by ``warp_id``, check whether ``tag`` was recently lost.

        A hit means the warp's own data was evicted — lost intra-warp
        locality.  LRU position refreshes on a hit.
        """
        self.probes += 1
        vta_set = self._set_of(warp_id, tag)
        if tag in vta_set:
            del vta_set[tag]
            vta_set[tag] = None
            self.probe_hits += 1
            return True
        return False

    def flush(self) -> None:
        """Clear all warps' arrays."""
        self._arrays.clear()

    def state_dict(self) -> dict:
        """Snapshot every warp's sets with tag LRU order preserved."""
        return {
            "arrays": [
                [
                    warp_id,
                    [[index, list(tags)] for index, tags in warp_sets.items()],
                ]
                for warp_id, warp_sets in self._arrays.items()
            ],
            "probes": self.probes,
            "probe_hits": self.probe_hits,
        }

    def load_state(self, state: dict) -> None:
        self._arrays = {
            warp_id: {
                index: {tag: None for tag in tags} for index, tags in sets
            }
            for warp_id, sets in state["arrays"]
        }
        self.probes = state["probes"]
        self.probe_hits = state["probe_hits"]

    @property
    def hit_rate(self) -> float:
        """Fraction of probes that found their tag."""
        return self.probe_hits / self.probes if self.probes else 0.0

    def storage_tags(self) -> int:
        """Total tag capacity across all warps (hardware-cost proxy)."""
        return self.num_warps * self.entries_per_warp
