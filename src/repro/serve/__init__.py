"""``repro.serve`` — the crash-safe, long-running simulation server.

ROADMAP item 2 ("sweep-as-a-service") made operational: an HTTP daemon
over the stable :mod:`repro.api` facade, built so that a million users
asking for fig02 costs one run — and so that a SIGKILL costs nothing.

The pieces, bottom-up:

- :mod:`repro.serve.jobs` — the job model: request validation against
  the keyword-only API schema, content-derived job ids (identical
  requests collapse to one job), terminal/retryable state machine.
- :mod:`repro.serve.journal` — the write-ahead job journal: every state
  transition is one fsync'd JSONL line (the SweepCheckpoint torn-line
  discipline), so a killed daemon replays to exactly the state it died
  in — zero lost and zero duplicated work.
- :mod:`repro.serve.leases` — lease-based dispatch: a job runs under a
  time-bounded lease; an expired lease (dead or wedged executor) is
  re-queued with decorrelated-jitter backoff under a bounded attempt
  budget, and a stale executor's late result is discarded.
- :mod:`repro.serve.admission` — backpressure: a bounded queue sheds
  load with ``429`` past its high-water mark and ``503`` while
  draining; readiness (including slot-shrink degradation) is one
  inspectable state object behind ``GET /readyz``.
- :mod:`repro.serve.app` — the daemon itself: ``POST /jobs``,
  ``GET /jobs/<id>``, ``/healthz``, ``/readyz``, and a live Prometheus
  ``/metrics`` endpoint fed by the unified
  :class:`repro.prof.registry.MetricsRegistry`.  SIGTERM drains
  gracefully: admission closes, in-flight jobs finish (or are
  re-queued into the journal), and the process exits 0.
- :mod:`repro.serve.client` — a stdlib-only client:
  ``ServeClient(url).submit(...)`` / ``.wait(job_id)``.

Everything rides the substrate PRs 3–5 built: execution lands on
:class:`repro.parallel.pool.SweepExecutor` (and through it the
supervised, snapshot-restartable worker pool), results dedup through
the content-addressed :class:`repro.parallel.cache.ResultCache`, and
``python -m repro.harness chaos --server`` SIGKILLs the daemon
mid-sweep to prove recovery is byte-identical.
"""

from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.jobs import Job, RequestError, normalize_request

__all__ = [
    "Job",
    "RequestError",
    "ServeClient",
    "ServeHTTPError",
    "normalize_request",
]
