"""The ``repro.serve`` HTTP daemon: journaled jobs, leases, drain.

One process, three moving parts:

- the **HTTP layer** (stdlib ``ThreadingHTTPServer``; no new deps):
  ``POST /jobs`` submits a simulate/sweep/figure request,
  ``GET /jobs/<id>`` polls it, ``GET /jobs`` lists, ``GET /healthz`` is
  process liveness, ``GET /readyz`` is routable readiness (503 while
  starting or draining; degradation spelled out in the body), and
  ``GET /metrics`` serves the unified
  :class:`repro.prof.registry.MetricsRegistry` as Prometheus text, and
  ``GET /dashboard`` is the server-rendered ops page (queue depth,
  live leases, cache reuse, per-engine simulated throughput, in-flight
  sweep ETA; auto-refreshes);
- the **dispatcher** (one background thread): leases queued jobs to
  executor threads while slots are free, re-queues expired leases with
  backoff, fails jobs that exhaust their attempt budget, and shrinks
  the slot count (→ serial fallback) when infrastructure failures
  streak;
- the **journal** (:mod:`repro.serve.journal`): every transition is
  fsync'd *before* the server acts on it, which is the entire
  crash-safety story — kill the daemon anywhere, restart it on the
  same journal, and every job continues to exactly one terminal state.

Execution reuses the sweep substrate end to end: cells run through
:class:`repro.parallel.pool.SweepExecutor` (with ``cell_jobs > 1``
that means the supervised, snapshot-restarting worker pool), identical
work dedups through the content-addressed
:class:`repro.parallel.cache.ResultCache`, and per-job wall-clock
deadlines ride :func:`repro.faults.watchdog.wall_clock_guard`.

Run it::

    python -m repro.serve --journal serve-journal.jsonl \
        --cache ~/.cache/repro-serve --port 8750

SIGTERM (or SIGINT) drains: admission closes (503), in-flight jobs get
``drain_grace_s`` to finish, anything still leased is re-queued into
the journal for the next incarnation, and the process exits 0.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass
from html import escape as html_escape
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import config_from_dict
from repro.faults.errors import SimulationError, WorkerCrashed
from repro.obs import log as _log
from repro.faults.watchdog import wall_clock_guard
from repro.parallel.cache import ResultCache
from repro.parallel.cells import Cell
from repro.parallel.pool import SweepExecutor
from repro.parallel.supervisor import PoolHealth
from repro.prof.export import to_prometheus
from repro.prof.registry import REGISTRY, MetricsRegistry
from repro.serve.admission import AdmissionController, Readiness
from repro.serve.jobs import (
    Job,
    RequestError,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    job_id_for,
    normalize_request,
)
from repro.serve.journal import JobJournal
from repro.serve.leases import Lease, LeaseTable

__all__ = ["ServeApp", "ServeConfig", "main", "make_server"]


@dataclass
class ServeConfig:
    """Everything the daemon is told at startup."""

    journal: str
    #: Size bound for the job journal; once an append pushes past it,
    #: the live state is compacted to a fresh segment atomically
    #: (None = grow without bound).
    journal_max_mb: Optional[float] = None
    host: str = "127.0.0.1"
    port: int = 0
    cache: Optional[str] = None
    cache_max_mb: Optional[float] = None
    #: Concurrent jobs (executor threads).  Distinct from ``cell_jobs``:
    #: a single figure job can itself fan cells out to worker processes.
    slots: int = 2
    #: Worker processes per job's sweep; >1 routes cells through the
    #: supervised (snapshot-restarting) pool.
    cell_jobs: int = 1
    #: Queue high-water mark: non-terminal jobs beyond this are shed
    #: with 429.
    high_water: int = 64
    lease_ttl_s: float = 120.0
    #: Default per-job wall-clock budget (None = unbounded).
    deadline_s: Optional[float] = 600.0
    #: Lease grants per job before it fails terminally.
    max_attempts: int = 3
    #: Per-cell structured-error retries inside a job.
    retries: int = 0
    #: Seconds in-flight jobs get to finish during drain before being
    #: re-queued for the next incarnation.
    drain_grace_s: float = 30.0
    retry_after_s: float = 2.0
    tick_s: float = 0.02
    #: Cell journal for the distributed sweep coordinator; None leaves
    #: the ``/dist/*`` routes off (single-machine daemon).
    dist_journal: Optional[str] = None
    #: Lease lifetime for remote workers (much shorter than job leases:
    #: workers heartbeat at ttl/3 while executing).
    dist_lease_ttl_s: float = 30.0
    #: Lease grants per cell before it fails structurally.
    dist_max_attempts: int = 3


class ServeApp:
    """The server's state machine, independent of the HTTP layer.

    Tests drive this object directly (fake clock, fake executor); the
    HTTP handler is a thin translation layer over :meth:`submit`,
    :meth:`job_view`, :meth:`readyz_view`, and :meth:`metrics_text`.
    """

    def __init__(
        self,
        config: ServeConfig,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        run_job: Optional[Callable[[Job], Any]] = None,
    ):
        self.config = config
        self.registry = registry if registry is not None else REGISTRY
        self.clock = clock
        self._run_job_fn = run_job if run_job is not None else self._run_job
        self.lock = threading.RLock()
        self.jobs: Dict[str, Job] = {}
        self._queue: List[str] = []  # FIFO of queued job ids
        self.journal: Optional[JobJournal] = None
        self.leases = LeaseTable(ttl=config.lease_ttl_s, clock=clock)
        self.admission = AdmissionController(
            config.high_water, retry_after_s=config.retry_after_s
        )
        self.readiness = Readiness(config.slots)
        # Same slot-shrink governor the supervised pool uses: streaks of
        # infrastructure failures (expired leases, crashed workers)
        # degrade concurrency down to serial instead of thrashing.
        self.health = PoolHealth(config.slots)
        self.cache = (
            ResultCache(
                config.cache,
                max_bytes=(
                    int(config.cache_max_mb * 1024 * 1024)
                    if config.cache_max_mb is not None
                    else None
                ),
            )
            if config.cache
            else None
        )
        #: Distributed sweep coordinator (``/dist/*`` routes), built in
        #: :meth:`start` when the config names a cell journal.
        self.coordinator: Optional["DistCoordinator"] = None
        self._stop = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._executors: List[threading.Thread] = []
        self._started_at = clock()
        # Last (clock, sim_cycles) per engine: the dashboard's
        # scrape-to-scrape throughput estimate.
        self._engine_rates: Dict[str, Tuple[float, float]] = {}

    # -- run log -------------------------------------------------------

    @staticmethod
    def _job_log(job: Job) -> _log.RunLogger:
        """Serve logger bound with the job's identity (and its engine
        when the request pinned one)."""
        context: Dict[str, Any] = {
            "job_id": job.id,
            "kind": job.kind,
            "attempt": job.attempts,
        }
        engine = (
            job.params.get("engine")
            if isinstance(job.params, dict)
            else None
        )
        if engine:
            context["engine"] = engine
        return _log.get_logger("serve", **context)

    # -- metrics -------------------------------------------------------

    def _observe_gauges(self) -> None:
        reg = self.registry
        reg.gauge(
            "serve_queue_depth", help="jobs queued and awaiting a lease"
        ).set(len(self._queue))
        reg.gauge("serve_in_flight", help="jobs currently leased").set(
            self.leases.live_count
        )
        reg.gauge(
            "serve_slots", help="current executor slots (shrinks when degraded)"
        ).set(self.health.slots)
        reg.gauge(
            "serve_ready", help="1 when /readyz returns 200"
        ).set(1 if self.readiness.is_ready else 0)

    def _count_request(self, method: str, route: str, code: int) -> None:
        self.registry.counter(
            "serve_http_requests_total", help="HTTP requests by route and code"
        ).inc(method=method, route=route, code=str(code))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Open (and replay) the journal, then start dispatching."""
        self.journal = JobJournal(
            self.config.journal,
            max_bytes=(
                int(self.config.journal_max_mb * 1024 * 1024)
                if self.config.journal_max_mb is not None
                else None
            ),
        )
        if self.config.dist_journal:
            from repro.dist.coordinator import DistCoordinator

            self.coordinator = DistCoordinator(
                self.config.dist_journal,
                cache=self.cache,
                registry=self.registry,
                lease_ttl=self.config.dist_lease_ttl_s,
                max_attempts=self.config.dist_max_attempts,
                clock=self.clock,
                journal_max_bytes=(
                    int(self.config.journal_max_mb * 1024 * 1024)
                    if self.config.journal_max_mb is not None
                    else None
                ),
            )
        replayed = self.journal.replayed
        with self.lock:
            self.jobs = replayed.jobs
            # Interrupted jobs (leased when the last incarnation died)
            # re-queue first — their submitters have waited longest —
            # then the still-queued ones in submission order.
            for job_id in replayed.interrupted:
                job = self.jobs[job_id]
                job.state = STATE_QUEUED
                self.journal.record_requeue(
                    job_id, job.attempts, reason="recovered"
                )
                self.registry.counter(
                    "serve_requeues_total", help="lease re-queues by reason"
                ).inc(reason="recovered")
            self._queue = [
                job.id
                for job in sorted(
                    self.jobs.values(), key=lambda j: j.submitted_unix
                )
                if job.state == STATE_QUEUED
            ]
            self.readiness.started = True
            self._observe_gauges()
            if _log.ENABLED:
                _log.get_logger("serve").info(
                    "serve_start",
                    jobs=len(self.jobs),
                    requeued=len(replayed.interrupted),
                    queued=len(self._queue),
                    slots=self.health.slots,
                )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def begin_drain(self) -> None:
        """Stop admitting; /readyz flips to 503 immediately."""
        with self.lock:
            self.readiness.draining = True
            self._observe_gauges()
            if _log.ENABLED:
                _log.get_logger("serve").info(
                    "drain_begin",
                    queued=len(self._queue),
                    in_flight=self.leases.live_count,
                )

    def drain(self, grace_s: Optional[float] = None) -> int:
        """Graceful shutdown: finish or re-queue in-flight, then stop.

        Returns the number of jobs re-queued for the next incarnation
        (0 means everything in flight finished inside the grace
        period).  The journal is durable at return.
        """
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        self.begin_drain()
        deadline = self.clock() + grace
        while self.clock() < deadline:
            with self.lock:
                if self.leases.live_count == 0:
                    break
            time.sleep(self.config.tick_s)
        requeued = 0
        with self.lock:
            # Whatever is still leased will not finish in time: fence
            # the leases off (late results are discarded) and journal
            # the re-queue so the next incarnation runs these jobs.
            for job_id in self.leases.live_job_ids():
                job = self.jobs.get(job_id)
                if job is None:
                    continue
                self.leases.revoke(job_id)
                job.state = STATE_QUEUED
                assert self.journal is not None
                self.journal.record_requeue(
                    job_id, job.attempts, reason="drain"
                )
                self.registry.counter(
                    "serve_requeues_total", help="lease re-queues by reason"
                ).inc(reason="drain")
                requeued += 1
            self._observe_gauges()
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        with self.lock:
            if self.journal is not None:
                self.journal.close()
                self.journal = None
            if self.coordinator is not None:
                self.coordinator.close()
                self.coordinator = None
        if _log.ENABLED:
            _log.get_logger("serve").info("drain_end", requeued=requeued)
        return requeued

    def close(self) -> None:
        """Hard stop (tests): no grace, no re-queue of the queue."""
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        with self.lock:
            if self.journal is not None:
                self.journal.close()
                self.journal = None
            if self.coordinator is not None:
                self.coordinator.close()
                self.coordinator = None

    # -- submission (POST /jobs) ---------------------------------------

    def submit(self, body: Any) -> Tuple[int, Dict[str, Any]]:
        """Admit one request; returns ``(http_status, response_body)``."""
        try:
            normalized = normalize_request(body)
        except RequestError as exc:
            return 400, {"error": str(exc)}
        job_id = job_id_for(normalized)
        with self.lock:
            existing = self.jobs.get(job_id)
            depth = sum(1 for j in self.jobs.values() if not j.terminal)
            verdict = self.admission.decide(
                queue_depth=depth,
                draining=self.readiness.draining,
                duplicate=existing is not None,
            )
            if not verdict.accepted:
                reason = "draining" if verdict.http_status == 503 else "busy"
                self.registry.counter(
                    "serve_admission_rejections_total",
                    help="submissions shed by admission control",
                ).inc(reason=reason)
                if _log.ENABLED:
                    _log.get_logger("serve").warning(
                        "admission_reject",
                        job_id=job_id,
                        reason=reason,
                        queue_depth=depth,
                    )
                body_out: Dict[str, Any] = {"error": verdict.reason}
                if verdict.retry_after_s is not None:
                    body_out["retry_after_s"] = verdict.retry_after_s
                return verdict.http_status, body_out
            self.registry.counter(
                "serve_jobs_submitted_total",
                help="accepted submissions by dedup outcome",
            ).inc(dedup="hit" if existing is not None else "miss")
            if existing is not None:
                return 200, existing.public_dict(include_result=False)
            job = Job.from_request(
                normalized, max_attempts=self.config.max_attempts
            )
            # Journal first, act second: the submit line is durable
            # before the client ever sees the 201.
            assert self.journal is not None
            self.journal.record_submit(job)
            self.jobs[job.id] = job
            self._queue.append(job.id)
            self._observe_gauges()
            if _log.ENABLED:
                self._job_log(job).info(
                    "job_admitted", queue_depth=depth + 1
                )
            return 201, job.public_dict(include_result=False)

    # -- queries -------------------------------------------------------

    def job_view(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self.lock:
            job = self.jobs.get(job_id)
            return None if job is None else job.public_dict()

    def jobs_view(self) -> List[Dict[str, Any]]:
        with self.lock:
            return [
                job.public_dict(include_result=False)
                for job in sorted(
                    self.jobs.values(), key=lambda j: j.submitted_unix
                )
            ]

    def _dist_fleet_view(self) -> Optional[Dict[str, Any]]:
        """Fleet summary for /readyz and /dashboard (None = dist off).

        ``degraded`` flags the state an operator must see: cells are
        waiting but zero workers are live — the sweep is stalled until
        a worker returns (nothing is lost; leases re-queue on expiry).
        """
        if self.coordinator is None:
            return None
        counts = self.coordinator.counts()
        workers_live = self.coordinator.live_workers()
        pending = counts.get("queued", 0) + counts.get("running", 0)
        return {
            "workers_live": workers_live,
            "cells": counts,
            "degraded": workers_live == 0 and pending > 0,
        }

    def readyz_view(self) -> Tuple[int, Dict[str, Any]]:
        with self.lock:
            self.readiness.current_slots = self.health.slots
            extra: Dict[str, Any] = {
                "queue_depth": len(self._queue),
                "in_flight": self.leases.live_count,
            }
            fleet = self._dist_fleet_view()
            if fleet is not None:
                extra["dist"] = fleet
            body = self.readiness.describe(**extra)
            return self.readiness.http_status, body

    def metrics_text(self) -> str:
        with self.lock:
            self._observe_gauges()
            return to_prometheus(self.registry)

    # -- ops dashboard -------------------------------------------------

    def _histogram_mean(self, name: str, **labels: str) -> Optional[float]:
        family = self.registry.get(name)
        if family is None or family.kind != "histogram":
            return None
        snap = family.snapshot(**labels)
        count = snap["count"]
        if not count:
            return None
        return snap["sum"] / count

    def dashboard_view(self) -> Dict[str, Any]:
        """Structured ops snapshot behind ``GET /dashboard``.

        Pure observation: queue depth, live leases (with per-kind ETA
        from the job-seconds histogram), cache reuse, per-engine
        simulated throughput, and the in-flight sweep's projected
        remaining seconds.
        """
        with self.lock:
            now = self.clock()
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            ttl = self.config.lease_ttl_s
            leases: List[Dict[str, Any]] = []
            for lease in self.leases.live_leases():
                job = self.jobs.get(lease.job_id)
                age = max(0.0, ttl - (lease.expires_at - now))
                kind = job.kind if job is not None else "?"
                mean = self._histogram_mean("serve_job_seconds", kind=kind)
                leases.append(
                    {
                        "job_id": lease.job_id,
                        "kind": kind,
                        "attempt": lease.attempt,
                        "age_s": round(age, 1),
                        "expires_in_s": round(
                            max(0.0, lease.expires_at - now), 1
                        ),
                        "eta_s": (
                            round(max(0.0, mean - age), 1)
                            if mean is not None
                            else None
                        ),
                    }
                )
            cells = self.registry.get("sweep_cells_total")
            cache = {"cache": 0, "checkpoint": 0, "simulated": 0, "failed": 0}
            if cells is not None:
                for labels, value in cells.series().items():
                    source = dict(labels).get("source", "?")
                    if source in cache:
                        cache[source] = int(value)
            reused = cache["cache"] + cache["checkpoint"]
            completed = reused + cache["simulated"] + cache["failed"]
            engines: List[Dict[str, Any]] = []
            cycles_family = self.registry.get("sim_cycles")
            instr_family = self.registry.get("sim_instructions")
            if cycles_family is not None:
                totals: Dict[str, float] = {}
                for labels, value in cycles_family.series().items():
                    engine = dict(labels).get("engine", "(unlabeled)")
                    totals[engine] = totals.get(engine, 0.0) + value
                for engine in sorted(totals):
                    cycles = totals[engine]
                    prev = self._engine_rates.get(engine)
                    # Rate between dashboard scrapes; first scrape falls
                    # back to the since-start average.
                    if prev is not None and now - prev[0] > 0.05:
                        rate = (cycles - prev[1]) / (now - prev[0])
                    elif now > self._started_at:
                        rate = cycles / (now - self._started_at)
                    else:
                        rate = 0.0
                    self._engine_rates[engine] = (now, cycles)
                    instructions = 0.0
                    if instr_family is not None:
                        instructions = sum(
                            value
                            for labels, value in instr_family.series().items()
                            if dict(labels).get("engine", "(unlabeled)")
                            == engine
                        )
                    engines.append(
                        {
                            "engine": engine,
                            "cycles": int(cycles),
                            "instructions": int(instructions),
                            "cycles_per_s": round(max(0.0, rate)),
                        }
                    )
            in_flight_cells = 0
            gauge = self.registry.get("sweep_in_flight")
            if gauge is not None:
                in_flight_cells = int(gauge.value())
            mean_cell = self._histogram_mean("sweep_cell_seconds")
            sweep_eta = (
                round(in_flight_cells * mean_cell, 1)
                if in_flight_cells and mean_cell is not None
                else None
            )
            return {
                "ready": self.readiness.is_ready,
                "draining": self.readiness.draining,
                "dist": self._dist_fleet_view(),
                "uptime_s": round(max(0.0, now - self._started_at), 1),
                "queue_depth": len(self._queue),
                "in_flight": self.leases.live_count,
                "slots": self.health.slots,
                "jobs": {
                    "total": len(self.jobs),
                    "queued": states.get(STATE_QUEUED, 0),
                    "running": states.get(STATE_RUNNING, 0),
                    "done": states.get(STATE_DONE, 0),
                    "failed": states.get(STATE_FAILED, 0),
                },
                "leases": leases,
                "cells": {**cache, "reused": reused, "completed": completed},
                "engines": engines,
                "sweep": {
                    "in_flight_cells": in_flight_cells,
                    "mean_cell_s": (
                        round(mean_cell, 3) if mean_cell is not None else None
                    ),
                    "eta_s": sweep_eta,
                },
            }

    def dashboard_html(self, refresh_s: int = 2) -> str:
        """Server-rendered HTML over :meth:`dashboard_view` (no JS
        frameworks, one meta refresh — readable from curl or a browser)."""
        view = self.dashboard_view()

        def esc(value: Any) -> str:
            return html_escape(str(value), quote=True)

        def dash(value: Any) -> str:
            return esc(value) if value is not None else "&mdash;"

        status = (
            "draining"
            if view["draining"]
            else ("ready" if view["ready"] else "not ready")
        )
        jobs = view["jobs"]
        rows = []
        for lease in view["leases"]:
            rows.append(
                "<tr>"
                f"<td><code>{esc(lease['job_id'])}</code></td>"
                f"<td>{esc(lease['kind'])}</td>"
                f"<td>{esc(lease['attempt'])}</td>"
                f"<td>{esc(lease['age_s'])}s</td>"
                f"<td>{esc(lease['expires_in_s'])}s</td>"
                f"<td>{dash(lease['eta_s'])}</td>"
                "</tr>"
            )
        lease_rows = "".join(rows) or (
            '<tr><td colspan="6"><em>no jobs in flight</em></td></tr>'
        )
        engine_rows = "".join(
            "<tr>"
            f"<td>{esc(row['engine'])}</td>"
            f"<td>{esc(row['cycles'])}</td>"
            f"<td>{esc(row['instructions'])}</td>"
            f"<td>{esc(row['cycles_per_s'])}</td>"
            "</tr>"
            for row in view["engines"]
        ) or '<tr><td colspan="4"><em>no simulations yet</em></td></tr>'
        cells = view["cells"]
        sweep = view["sweep"]
        dist = view.get("dist")
        if dist is None:
            dist_section = ""
        else:
            fleet_note = (
                '<p><b style="color:#b35900">fleet degraded:</b> cells '
                "pending with zero live workers — sweeps stall until a "
                "worker returns</p>"
                if dist["degraded"]
                else ""
            )
            dist_cells = dist["cells"]
            dist_section = f"""<h2>Distributed fleet</h2>
<p><b>{esc(dist['workers_live'])}</b> live worker(s) &middot;
{esc(dist_cells['queued'])} queued &middot;
{esc(dist_cells['running'])} running &middot;
{esc(dist_cells['done'])} done &middot;
{esc(dist_cells['failed'])} failed</p>
{fleet_note}"""
        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{int(refresh_s)}">
<title>repro.serve dashboard</title>
<style>
body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2em; color: #222; }}
table {{ border-collapse: collapse; margin: 0.5em 0 1.5em; }}
th, td {{ border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: left; }}
th {{ background: #f2f2f2; }}
.kpis span {{ display: inline-block; margin-right: 2em; }}
.kpis b {{ font-size: 1.4em; }}
.status-ready {{ color: #1a7f37; }}
.status-draining, .status-not.ready {{ color: #b35900; }}
</style>
</head>
<body>
<h1>repro.serve <span class="status-{esc(status.replace(' ', '.'))}">{esc(status)}</span></h1>
<p class="kpis">
<span><b>{esc(view['queue_depth'])}</b> queued</span>
<span><b>{esc(view['in_flight'])}</b> in flight</span>
<span><b>{esc(view['slots'])}</b> slots</span>
<span><b>{esc(jobs['done'])}</b> done</span>
<span><b>{esc(jobs['failed'])}</b> failed</span>
<span><b>{esc(view['uptime_s'])}s</b> up</span>
</p>
<h2>Leases</h2>
<table>
<tr><th>job</th><th>kind</th><th>attempt</th><th>age</th>
<th>lease expires</th><th>eta</th></tr>
{lease_rows}
</table>
<h2>Engines</h2>
<table>
<tr><th>engine</th><th>sim cycles</th><th>instructions</th>
<th>cycles/s</th></tr>
{engine_rows}
</table>
<h2>Cells</h2>
<p>{esc(cells['completed'])} completed &middot;
{esc(cells['simulated'])} simulated &middot;
{esc(cells['reused'])} reused (cache {esc(cells['cache'])},
checkpoint {esc(cells['checkpoint'])}) &middot;
{esc(cells['failed'])} failed</p>
<p>In-flight sweep: {esc(sweep['in_flight_cells'])} cell(s)
&middot; mean cell {dash(sweep['mean_cell_s'])}s
&middot; eta {dash(sweep['eta_s'])}s</p>
{dist_section}</body>
</html>
"""

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._tick()
            time.sleep(self.config.tick_s)

    def _tick(self) -> None:
        """One supervision step: expire leases, then fill free slots."""
        now = self.clock()
        if self.coordinator is not None:
            # Dist upkeep first (its own lock): expire worker leases,
            # re-queue their cells, refresh fleet gauges.
            self.coordinator.maintain()
        with self.lock:
            for lease in self.leases.expired():
                self._on_lease_expired(lease)
            if self.readiness.draining:
                return
            while self._queue and self.leases.live_count < self.health.slots:
                job_id = self._next_runnable(now)
                if job_id is None:
                    break
                self._lease_and_launch(job_id)
            self.readiness.current_slots = self.health.slots
            self._observe_gauges()

    def _next_runnable(self, now: float) -> Optional[str]:
        for index, job_id in enumerate(self._queue):
            job = self.jobs.get(job_id)
            if job is None or job.state != STATE_QUEUED:
                self._queue.pop(index)
                return None  # table/queue drifted; next tick continues
            if job.not_before <= now:
                self._queue.pop(index)
                return job_id
        return None

    def _lease_and_launch(self, job_id: str) -> None:
        job = self.jobs[job_id]
        job.attempts += 1
        job.state = STATE_RUNNING
        lease = self.leases.grant(job_id, job.attempts)
        assert self.journal is not None
        self.journal.record_lease(
            job_id,
            job.attempts,
            expires_unix=time.time() + self.config.lease_ttl_s,
        )
        if _log.ENABLED:
            self._job_log(job).info(
                "lease_granted", ttl_s=self.config.lease_ttl_s
            )
        thread = threading.Thread(
            target=self._execute,
            args=(job.copy(), lease),
            name=f"serve-exec-{job_id}",
            daemon=True,
        )
        self._executors.append(thread)
        self._executors = [t for t in self._executors if t.is_alive()]
        thread.start()

    def _on_lease_expired(self, lease: Lease) -> None:
        """A leaseholder went dark: fence it off and re-queue or fail."""
        job = self.jobs.get(lease.job_id)
        self.leases.revoke(lease.job_id)
        self.registry.counter(
            "serve_lease_expirations_total",
            help="leases that expired before their executor committed",
        ).inc()
        self.health.on_crash()
        if job is None or job.terminal:
            return
        assert self.journal is not None
        if job.attempts >= job.max_attempts:
            message = (
                f"lease expired on attempt {job.attempts}/"
                f"{job.max_attempts}; executor presumed dead or wedged"
            )
            self.journal.record_fail(
                job.id, "LeaseExpired", message, job.attempts
            )
            job.state = STATE_FAILED
            job.error = {
                "type": "LeaseExpired",
                "message": message,
                "attempts": job.attempts,
            }
            self._count_terminal(STATE_FAILED)
            if _log.ENABLED:
                self._job_log(job).error(
                    "lease_expired", outcome="failed", attempts=job.attempts
                )
            return
        delay = self.leases.requeue_delay(job.id)
        job.state = STATE_QUEUED
        job.not_before = self.clock() + delay
        self.journal.record_requeue(
            job.id, job.attempts, reason="lease-expired", delay_s=delay
        )
        self.registry.counter(
            "serve_requeues_total", help="lease re-queues by reason"
        ).inc(reason="lease-expired")
        self._queue.append(job.id)
        if _log.ENABLED:
            self._job_log(job).warning(
                "lease_expired",
                outcome="requeued",
                delay_s=round(delay, 3),
            )

    def _count_terminal(self, state: str) -> None:
        self.registry.counter(
            "serve_jobs_terminal_total", help="jobs reaching a terminal state"
        ).inc(state=state)

    # -- execution -----------------------------------------------------

    def _execute(self, job: Job, lease: Lease) -> None:
        """Executor-thread body: run the job, commit under the lease."""
        started = self.clock()
        failure: Optional[Tuple[str, str]] = None
        infrastructure = False
        result: Any = None
        try:
            result = self._run_job_fn(job)
        except WorkerCrashed as exc:
            failure = (type(exc).__name__, str(exc))
            infrastructure = True
        except SimulationError as exc:
            failure = (type(exc).__name__, str(exc))
        except BaseException as exc:  # noqa: BLE001 — executor boundary
            failure = (type(exc).__name__, str(exc))
        elapsed = self.clock() - started
        with self.lock:
            if not self.leases.release(lease):
                # Fenced off: the lease expired (or drain revoked it)
                # and the job moved on without us.  Exactly-once means
                # this late outcome must be discarded.
                self.registry.counter(
                    "serve_stale_results_total",
                    help="executor outcomes discarded after lease loss",
                ).inc()
                if _log.ENABLED:
                    self._job_log(job).warning(
                        "stale_result_discarded",
                        elapsed_s=round(elapsed, 3),
                    )
                return
            live = self.jobs[job.id]
            assert self.journal is not None
            if failure is None:
                self.journal.record_done(live.id, result, elapsed_s=elapsed)
                live.state = STATE_DONE
                live.result = result
                live.error = None
                self.health.on_success()
                self._count_terminal(STATE_DONE)
                if _log.ENABLED:
                    self._job_log(live).info(
                        "job_done", elapsed_s=round(elapsed, 3)
                    )
            else:
                error_type, message = failure
                self.journal.record_fail(
                    live.id, error_type, message, live.attempts
                )
                live.state = STATE_FAILED
                live.error = {
                    "type": error_type,
                    "message": message,
                    "attempts": live.attempts,
                }
                if infrastructure:
                    self.health.on_crash()
                else:
                    # A structured simulation failure is deterministic;
                    # it says nothing about the host's health.
                    self.health.on_success()
                self._count_terminal(STATE_FAILED)
                if _log.ENABLED:
                    self._job_log(live).error(
                        "job_failed",
                        error=error_type,
                        infrastructure=infrastructure,
                        elapsed_s=round(elapsed, 3),
                    )
            self.registry.histogram(
                "serve_job_seconds", help="job execution wall time"
            ).observe(elapsed, kind=job.kind)
            self._observe_gauges()

    def _run_job(self, job: Job) -> Any:
        """Default executor: map the job onto the repro.api substrate."""
        deadline = (
            job.deadline_s
            if job.deadline_s is not None
            else self.config.deadline_s
        )
        with wall_clock_guard(deadline or 0.0, label=f"job {job.id}"):
            if job.kind == "simulate":
                cell = Cell(
                    label="serve",
                    workload=job.params["workload"],
                    config=config_from_dict(job.params["config"]),
                    form=job.params.get("form"),
                    miss_scale=job.params.get("miss_scale", 1.0),
                )
                executor = SweepExecutor(
                    jobs=1,
                    cache=self.cache,
                    retries=self.config.retries,
                )
                return executor.run([cell])[0].to_dict()
            if job.kind == "sweep":
                from repro.api import sweep as api_sweep

                rows = api_sweep(
                    configs={
                        label: config_from_dict(spec)
                        for label, spec in job.params["configs"].items()
                    },
                    workloads=job.params.get("workloads"),
                    jobs=self.config.cell_jobs,
                    cache=self.config.cache,
                    cache_max_mb=self.config.cache_max_mb,
                    retries=self.config.retries,
                    form=job.params.get("form"),
                    miss_scale=job.params.get("miss_scale", 1.0),
                    baseline=job.params.get("baseline"),
                )
                return [row.to_dict() for row in rows]
            from repro.api import figure as api_figure

            row = api_figure(
                name=job.params["name"],
                workloads=job.params.get("workloads"),
                jobs=self.config.cell_jobs,
                cache=self.config.cache,
                cache_max_mb=self.config.cache_max_mb,
                retries=self.config.retries,
                engine=job.params.get("engine"),
            )
            return row.to_dict()


# -- HTTP layer --------------------------------------------------------


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: ServeApp


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # metrics carry the request log; stderr stays quiet

    def _send_json(
        self,
        code: int,
        payload: Dict[str, Any],
        route: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)
        self.app._count_request(self.command, route, code)

    def _send_text(self, code: int, text: str, route: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.app._count_request(self.command, route, code)

    def _send_html(self, code: int, text: str, route: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.app._count_request(self.command, route, code)

    def _dist(self, path: str, body: Any = None) -> None:
        """Delegate a ``/dist/*`` request to the coordinator."""
        coordinator = self.app.coordinator
        if coordinator is None:
            self._send_json(
                404,
                {"error": "distributed sharding is disabled "
                 "(start the daemon with --dist-journal)"},
                "/dist",
            )
            return
        code, payload = coordinator.handle(self.command, path, body)
        self._send_json(code, payload, "/dist")

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path.startswith("/dist/"):
            self._dist(path)
            return
        if path == "/healthz":
            self._send_json(200, {"status": "alive"}, "/healthz")
        elif path == "/readyz":
            code, body = self.app.readyz_view()
            self._send_json(code, body, "/readyz")
        elif path == "/metrics":
            self._send_text(200, self.app.metrics_text(), "/metrics")
        elif path == "/dashboard":
            self._send_html(200, self.app.dashboard_html(), "/dashboard")
        elif path == "/jobs":
            self._send_json(200, {"jobs": self.app.jobs_view()}, "/jobs")
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            view = self.app.job_view(job_id)
            if view is None:
                self._send_json(
                    404, {"error": f"no job {job_id!r}"}, "/jobs/<id>"
                )
            else:
                self._send_json(200, view, "/jobs/<id>")
        else:
            self._send_json(404, {"error": f"no route {path!r}"}, path)

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs" and not path.startswith("/dist/"):
            self._send_json(404, {"error": f"no route {path!r}"}, path)
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            body = json.loads(raw.decode("utf-8")) if raw else None
        except (ValueError, UnicodeDecodeError):
            # A torn body (truncated upload, injected tear) is a 400 —
            # never a half-parsed payload.
            self._send_json(
                400,
                {"error": "request body is not valid JSON"},
                "/dist" if path.startswith("/dist/") else "/jobs",
            )
            return
        if path.startswith("/dist/"):
            self._dist(path, body)
            return
        code, payload = self.app.submit(body)
        self._send_json(
            code,
            payload,
            "/jobs",
            retry_after_s=payload.get("retry_after_s") if code == 429 else None,
        )


def make_server(app: ServeApp) -> _ServeHTTPServer:
    """Bind the HTTP server for ``app`` (port 0 picks a free port)."""
    httpd = _ServeHTTPServer(
        (app.config.host, app.config.port), _Handler
    )
    httpd.app = app
    return httpd


# -- daemon entry point ------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Crash-safe simulation server over repro.api.",
    )
    parser.add_argument(
        "--journal",
        required=True,
        metavar="PATH",
        help="write-ahead job journal (JSONL); restarting on the same "
        "journal resumes every job exactly once",
    )
    parser.add_argument(
        "--journal-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="compact the journal once it outgrows this size "
        "(live entries are rewritten to a fresh segment atomically; "
        "default: unbounded)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8750, help="0 picks a free port"
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound 'host:port' here once listening "
        "(for --port 0 orchestration)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="content-addressed result cache shared by every job",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU size bound for the result cache",
    )
    parser.add_argument(
        "--slots", type=int, default=2, help="concurrent jobs (default 2)"
    )
    parser.add_argument(
        "--cell-jobs",
        type=int,
        default=1,
        help="worker processes per job's sweep; >1 uses the supervised "
        "pool (default 1)",
    )
    parser.add_argument(
        "--high-water",
        type=int,
        default=64,
        help="queue depth past which POST /jobs returns 429 (default 64)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="lease lifetime; an executor silent past this is presumed "
        "dead and its job re-queued (default 120)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="default per-job wall-clock budget (default 600; 0 = none)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="lease grants per job before it fails terminally (default 3)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="per-cell structured-error retries inside a job (default 0)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds in-flight jobs get to finish on SIGTERM "
        "(default 30)",
    )
    parser.add_argument(
        "--dist-journal",
        default=None,
        metavar="PATH",
        help="cell journal for the distributed sweep coordinator; "
        "enables the /dist/* routes remote workers pull from",
    )
    parser.add_argument(
        "--dist-lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="worker lease lifetime; a worker silent past this is "
        "presumed dead and its cell re-queued (default 30)",
    )
    parser.add_argument(
        "--dist-max-attempts",
        type=int,
        default=3,
        help="lease grants per cell before it fails structurally "
        "(default 3)",
    )
    args = parser.parse_args(argv)
    _log.configure_from_env()

    config = ServeConfig(
        journal=args.journal,
        journal_max_mb=args.journal_max_mb,
        host=args.host,
        port=args.port,
        cache=args.cache,
        cache_max_mb=args.cache_max_mb,
        slots=max(1, args.slots),
        cell_jobs=max(1, args.cell_jobs),
        high_water=max(1, args.high_water),
        lease_ttl_s=args.lease_ttl,
        deadline_s=args.deadline if args.deadline > 0 else None,
        max_attempts=max(1, args.max_attempts),
        retries=max(0, args.retries),
        drain_grace_s=args.drain_grace,
        dist_journal=args.dist_journal,
        dist_lease_ttl_s=args.dist_lease_ttl,
        dist_max_attempts=max(1, args.dist_max_attempts),
    )
    app = ServeApp(config)
    app.start()
    httpd = make_server(app)
    bound = f"{httpd.server_address[0]}:{httpd.server_address[1]}"
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(bound)
    print(f"repro.serve listening on {bound}", flush=True)

    drain_requested = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        drain_requested.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    http_thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.1},
        daemon=True,
    )
    http_thread.start()
    while not drain_requested.wait(timeout=0.2):
        pass
    print("repro.serve draining (signal received)", flush=True)
    app.begin_drain()  # stop admitting before the listener goes away
    requeued = app.drain()
    httpd.shutdown()
    httpd.server_close()
    http_thread.join(timeout=5.0)
    print(
        f"repro.serve drained: {requeued} job(s) re-queued for the next "
        "incarnation",
        flush=True,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
