"""Admission control and readiness: bounded queues, honest load-shed.

A daemon that accepts everything dies of everything.  The admission
controller enforces one rule at ``POST /jobs``: once the queue of
not-yet-terminal jobs crosses its high-water mark, new *distinct* work
is refused with ``429 Too Many Requests`` (plus a ``Retry-After`` hint)
— never buffered without bound, never allowed to OOM the server.  Two
request classes bypass the depth check:

- duplicates of an already-known job (they cost a table lookup, and
  refusing them would punish exactly the clients the dedup design
  serves);
- nothing else — during drain even duplicates of *queued* jobs get
  ``503``, because the server can no longer promise to run them.

:class:`Readiness` is the ``GET /readyz`` state machine: ``starting``
(journal replay not finished) and ``draining`` are not-ready (503);
``ready`` and ``degraded`` (execution slots shrunk after repeated
infrastructure failures — the serial-fallback mode) are ready (200),
with the degradation spelled out in the body so an orchestrator can
route around a limping replica before it stops answering entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["Admission", "AdmissionController", "Readiness"]


@dataclass(frozen=True)
class Admission:
    """The verdict on one submission."""

    accepted: bool
    http_status: int
    reason: str = ""
    retry_after_s: Optional[float] = None


class AdmissionController:
    """Bounded-queue load shedding for new job submissions."""

    def __init__(self, high_water: int, retry_after_s: float = 2.0):
        if high_water < 1:
            raise ValueError("admission high-water mark must be >= 1")
        self.high_water = high_water
        self.retry_after_s = retry_after_s
        self.rejected_busy = 0
        self.rejected_draining = 0

    def decide(
        self, queue_depth: int, draining: bool, duplicate: bool
    ) -> Admission:
        """Admit or shed one submission.

        ``queue_depth`` counts non-terminal jobs (queued + running);
        ``duplicate`` means the request's content-derived id already
        exists, so admitting it adds no work.
        """
        if draining:
            self.rejected_draining += 1
            return Admission(
                accepted=False,
                http_status=503,
                reason="draining: no longer admitting jobs",
            )
        if duplicate:
            return Admission(accepted=True, http_status=200)
        if queue_depth >= self.high_water:
            self.rejected_busy += 1
            return Admission(
                accepted=False,
                http_status=429,
                reason=(
                    f"queue full ({queue_depth} jobs >= high-water "
                    f"{self.high_water}); retry later"
                ),
                retry_after_s=self.retry_after_s,
            )
        return Admission(accepted=True, http_status=201)


class Readiness:
    """The /readyz state machine: starting → ready ⇄ degraded → draining."""

    STARTING = "starting"
    READY = "ready"
    DEGRADED = "degraded"
    DRAINING = "draining"

    def __init__(self, configured_slots: int):
        self.configured_slots = configured_slots
        self.started = False
        self.draining = False
        self.current_slots = configured_slots

    @property
    def state(self) -> str:
        if self.draining:
            return self.DRAINING
        if not self.started:
            return self.STARTING
        if self.current_slots < self.configured_slots:
            return self.DEGRADED
        return self.READY

    @property
    def is_ready(self) -> bool:
        """Ready to take traffic — degraded still counts as ready."""
        return self.state in (self.READY, self.DEGRADED)

    @property
    def http_status(self) -> int:
        return 200 if self.is_ready else 503

    def describe(self, **extra: Any) -> Dict[str, Any]:
        """The /readyz JSON body."""
        body: Dict[str, Any] = {
            "state": self.state,
            "ready": self.is_ready,
            "slots": self.current_slots,
            "configured_slots": self.configured_slots,
        }
        if self.state == self.DEGRADED:
            body["note"] = (
                "execution degraded: slots shrunk after repeated "
                "infrastructure failures (serial fallback at 1)"
            )
        body.update(extra)
        return body
