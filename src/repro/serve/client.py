"""A stdlib client for the ``repro.serve`` daemon.

Thin by design: :class:`ServeClient` speaks the server's JSON dialect
over :mod:`urllib` (no new dependencies), raises
:class:`ServeHTTPError` on any non-2xx status so callers can branch on
``exc.status`` (429 → back off and retry, 503 → the replica is
starting/draining, find another), and knows how to poll a job to a
terminal state with :meth:`ServeClient.wait`.

Quickstart::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8750")
    job = client.submit("figure", {"name": "fig02"})
    done = client.wait(job["id"], timeout_s=600)
    print(done["result"])

Submissions are idempotent end to end: the job id is derived from the
request content, so re-submitting after a lost response (or across a
server restart on the same journal) returns the existing job instead
of duplicating work.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["ServeClient", "ServeHTTPError"]


class ServeHTTPError(RuntimeError):
    """A non-2xx response from the server, body attached."""

    def __init__(self, status: int, body: Any, url: str):
        self.status = status
        self.body = body
        self.url = url
        reason = ""
        if isinstance(body, dict) and "error" in body:
            reason = f": {body['error']}"
        super().__init__(f"HTTP {status} from {url}{reason}")

    @property
    def retry_after_s(self) -> Optional[float]:
        """The server's backoff hint on 429 responses, if any."""
        if isinstance(self.body, dict):
            value = self.body.get("retry_after_s")
            if value is not None:
                return float(value)
        return None


class ServeClient:
    """Talks to one ``repro.serve`` daemon."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        url = self.base_url + path
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw.decode("utf-8")) if raw else None
            except (ValueError, UnicodeDecodeError):
                body = raw.decode("utf-8", errors="replace")
            raise ServeHTTPError(exc.code, body, url) from None
        text = raw.decode("utf-8")
        # /metrics is Prometheus text, everything else is JSON.
        if path.startswith("/metrics"):
            return text
        return json.loads(text) if text else None

    # -- jobs ----------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: Dict[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """``POST /jobs``; returns the job view (new or deduplicated).

        Raises :class:`ServeHTTPError` with ``status`` 429 when the
        server is shedding load and 503 when it is draining — catch and
        consult :attr:`ServeHTTPError.retry_after_s`.
        """
        body: Dict[str, Any] = {"kind": kind, "params": params}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` (404 raises ServeHTTPError)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> Any:
        """``GET /jobs`` — every job the server knows, sans results."""
        return self._request("GET", "/jobs")["jobs"]

    def wait(
        self,
        job_id: str,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final view.

        Raises :class:`TimeoutError` if the job is still running when
        ``timeout_s`` elapses (the job itself keeps going server-side).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            view = self.job(job_id)
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']!r} after "
                    f"{timeout_s:.1f}s"
                )
            time.sleep(poll_s)

    # -- operational endpoints -----------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        """``GET /readyz`` body; raises ServeHTTPError(503) if not ready."""
        return self._request("GET", "/readyz")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition text from ``GET /metrics``."""
        return self._request("GET", "/metrics")
