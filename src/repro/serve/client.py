"""A stdlib client for the ``repro.serve`` daemon.

Thin by design: :class:`ServeClient` speaks the server's JSON dialect
over :mod:`urllib` (no new dependencies), raises
:class:`ServeHTTPError` on any non-2xx status so callers can branch on
``exc.status`` (429 → back off and retry, 503 → the replica is
starting/draining, find another), and knows how to poll a job to a
terminal state with :meth:`ServeClient.wait`.

Quickstart::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8750")
    job = client.submit("figure", {"name": "fig02"})
    done = client.wait(job["id"], timeout_s=600)
    print(done["result"])

Submissions are idempotent end to end: the job id is derived from the
request content, so re-submitting after a lost response (or across a
server restart on the same journal) returns the existing job instead
of duplicating work.  That idempotence is why the client transparently
retries *connection-level* failures (refused, reset, timed out) on
``GET`` and ``POST /jobs`` through the shared decorrelated-jitter
:class:`~repro.parallel.backoff.Backoff` — re-delivering either is
harmless.  HTTP-level errors (4xx/5xx) are never retried here; they
are answers, and the caller branches on ``exc.status``.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.parallel.backoff import Backoff

__all__ = ["ServeClient", "ServeHTTPError"]

#: Exceptions that mean "the bytes never made it", not "the server said
#: no" — the only failures the idempotent-retry path acts on.
_CONNECTION_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
    OSError,
)


class ServeHTTPError(RuntimeError):
    """A non-2xx response from the server, body attached."""

    def __init__(self, status: int, body: Any, url: str):
        self.status = status
        self.body = body
        self.url = url
        reason = ""
        if isinstance(body, dict) and "error" in body:
            reason = f": {body['error']}"
        super().__init__(f"HTTP {status} from {url}{reason}")

    @property
    def retry_after_s(self) -> Optional[float]:
        """The server's backoff hint on 429 responses, if any."""
        if isinstance(self.body, dict):
            value = self.body.get("retry_after_s")
            if value is not None:
                return float(value)
        return None


class ServeClient:
    """Talks to one ``repro.serve`` daemon."""

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        retries: int = 2,
        backoff_seed: int = 0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        #: Extra attempts for idempotent requests after a connection
        #: failure (0 disables the retry path entirely).
        self.retries = max(0, retries)
        self._backoff_seed = backoff_seed

    # -- transport -----------------------------------------------------

    def _open(self, request: urllib.request.Request):
        """The socket seam (tests substitute a scripted opener)."""
        return urllib.request.urlopen(request, timeout=self.timeout_s)

    @staticmethod
    def _idempotent(method: str, path: str) -> bool:
        """Safe to re-deliver: every GET, and the content-addressed
        ``POST /jobs`` (a duplicate submit dedups server-side)."""
        return method == "GET" or (method == "POST" and path == "/jobs")

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        url = self.base_url + path
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        attempts = 1 + (
            self.retries if self._idempotent(method, path) else 0
        )
        backoff = Backoff(seed=self._backoff_seed)
        for attempt in range(attempts):
            try:
                raw = self._fetch(request, url)
                break
            except ServeHTTPError:
                # An HTTP status is an answer, never a lost request.
                raise
            except _CONNECTION_ERRORS:
                if attempt + 1 >= attempts:
                    raise
                backoff.sleep()
        text = raw.decode("utf-8")
        # /metrics is Prometheus text, everything else is JSON.
        if path.startswith("/metrics"):
            return text
        return json.loads(text) if text else None

    def _fetch(self, request: urllib.request.Request, url: str) -> bytes:
        try:
            with self._open(request) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw.decode("utf-8")) if raw else None
            except (ValueError, UnicodeDecodeError):
                body = raw.decode("utf-8", errors="replace")
            raise ServeHTTPError(exc.code, body, url) from None

    # -- jobs ----------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: Dict[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """``POST /jobs``; returns the job view (new or deduplicated).

        Raises :class:`ServeHTTPError` with ``status`` 429 when the
        server is shedding load and 503 when it is draining — catch and
        consult :attr:`ServeHTTPError.retry_after_s`.
        """
        body: Dict[str, Any] = {"kind": kind, "params": params}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` (404 raises ServeHTTPError)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> Any:
        """``GET /jobs`` — every job the server knows, sans results."""
        return self._request("GET", "/jobs")["jobs"]

    def wait(
        self,
        job_id: str,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final view.

        Raises :class:`TimeoutError` if the job is still running when
        ``timeout_s`` elapses (the job itself keeps going server-side).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            view = self.job(job_id)
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']!r} after "
                    f"{timeout_s:.1f}s"
                )
            time.sleep(poll_s)

    # -- operational endpoints -----------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        """``GET /readyz`` body; raises ServeHTTPError(503) if not ready."""
        return self._request("GET", "/readyz")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition text from ``GET /metrics``."""
        return self._request("GET", "/metrics")
