"""``python -m repro.serve`` — run the crash-safe simulation daemon."""

from repro.serve.app import main

if __name__ == "__main__":
    raise SystemExit(main())
