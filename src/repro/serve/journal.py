"""The write-ahead job journal: the server's only source of truth.

Every job state transition is one JSON line appended to the journal —
``flush`` + ``fsync`` before the server acts on it, exactly the
:class:`repro.harness.checkpoint.SweepCheckpoint` discipline — so the
durable record always *leads* the in-memory state.  A SIGKILL at any
instant leaves a journal whose replay reconstructs the server exactly:

- jobs journaled as submitted but never leased come back ``queued``;
- jobs leased but not terminal were running when the process died —
  replay re-queues them (their lease died with the leaseholder), so no
  work is lost;
- jobs with a terminal event stay terminal, result attached, so no
  work is repeated;
- a crash mid-append tears at most the final line, which replay drops
  with a :class:`RuntimeWarning` (the transition it recorded simply
  re-happens);
- a duplicate ``submit`` for an id already seen (a client retrying a
  lost response across a restart) replays to the one existing job.

Event vocabulary (the ``ev`` field): ``submit``, ``lease``,
``requeue``, ``done``, ``fail``.  The journal is append-only between
compactions; :meth:`JobJournal.terminal_counts` exists so the chaos
campaign can assert every job reached a terminal state exactly once
across any number of crashes.

The append-only mechanics live in :class:`WalFile` so other write-ahead
logs (the distributed sweep's cell journal, :mod:`repro.dist.journal`)
share one implementation of the crash-safety story: torn-tail repair at
open, fsync'd appends, torn-line-tolerant replay, and size-triggered
**compaction** — once the file outgrows ``max_bytes``, the live state
is rewritten to a fresh segment via an atomic ``os.replace`` (a crash
mid-compaction leaves the original segment untouched; a stale
``*.compact.tmp`` from such a crash is discarded at the next open).
Compaction preserves the replay contract exactly: every job replays to
the same state, attempts, and result, and every terminal job still
counts exactly one terminal event.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.serve.jobs import (
    Job,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
)

__all__ = ["JobJournal", "ReplayState", "WalFile", "read_wal"]


def read_wal(
    path: str,
    label: str = "journal",
    stats: Optional[Dict[str, int]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield every parseable JSON event in the WAL at ``path``.

    Torn lines (a crash mid-append) are dropped with a
    :class:`RuntimeWarning` naming the line — the transition a torn
    line recorded simply re-happens, but dropping one *silently* would
    make a corrupted file indistinguishable from a clean one.  Pass a
    ``stats`` dict to additionally count drops under ``"dropped"``.
    """
    if not os.path.exists(path):
        return
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if stats is not None:
                    stats["dropped"] = stats.get("dropped", 0) + 1
                warnings.warn(
                    f"{label} {path}: dropping truncated line {lineno} "
                    f"(crash mid-append?); the transition it recorded "
                    f"will re-happen",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            if isinstance(event, dict):
                yield event


class WalFile:
    """Append-only, fsync'd JSONL write-ahead log with compaction.

    Subclasses append events with :meth:`append` and may override
    :meth:`live_events` to opt into size-triggered compaction: when an
    append pushes the file past ``max_bytes``, the events returned by
    :meth:`live_events` are written to a temporary segment (flushed and
    fsync'd) which atomically replaces the log.  ``live_events``
    returning ``None`` (the default) disables compaction.
    """

    def __init__(self, path: str, max_bytes: Optional[int] = None):
        self.path = path
        self.max_bytes = max_bytes
        self.compactions = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        # A compaction interrupted by a crash leaves its half-written
        # temporary segment behind; the original log was never touched
        # (os.replace is the commit point), so the leftover is garbage.
        stale = self._tmp_path()
        if os.path.exists(stale):
            try:
                os.remove(stale)
            except OSError:
                pass
        # A crash mid-append can leave the file without a trailing
        # newline.  Terminate that torn line before appending, or the
        # first new event would concatenate onto the garbage and be
        # lost with it on the next replay.
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                ends_clean = probe.read(1) == b"\n"
            if not ends_clean:
                with open(path, "ab") as repair:
                    repair.write(b"\n")
                    repair.flush()
                    os.fsync(repair.fileno())
        self._file = open(path, "a", encoding="utf-8")

    def _tmp_path(self) -> str:
        return self.path + ".compact.tmp"

    # -- appends (each one durable before it returns) ------------------

    def append(self, event: Dict[str, Any]) -> None:
        self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        if (
            self.max_bytes is not None
            and self._file.tell() > self.max_bytes
        ):
            self._compact()

    # -- compaction ----------------------------------------------------

    def live_events(self) -> Optional[List[Dict[str, Any]]]:
        """The minimal event list reconstructing the current state.

        ``None`` (the default) means this log does not compact.
        """
        return None

    def _compact(self) -> None:
        events = self.live_events()
        if events is None:
            return
        tmp = self._tmp_path()
        with open(tmp, "w", encoding="utf-8") as out:
            for event in events:
                out.write(json.dumps(event, sort_keys=True) + "\n")
            out.flush()
            os.fsync(out.fileno())
        self._file.close()
        # The commit point: a crash before this line leaves the old
        # segment intact (plus a stale tmp the next open discards); a
        # crash after it leaves the compacted segment, fully fsync'd.
        os.replace(tmp, self.path)
        try:
            dir_fd = os.open(
                os.path.dirname(os.path.abspath(self.path)) or ".",
                os.O_RDONLY,
            )
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass  # directory fsync is best-effort (non-POSIX hosts)
        self._file = open(self.path, "a", encoding="utf-8")
        self.compactions += 1

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "WalFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ReplayState:
    """What a journal replay reconstructs."""

    jobs: Dict[str, Job] = field(default_factory=dict)
    #: id → number of terminal (done/fail) events seen.  Exactly-once
    #: means every value here is 1.
    terminal_counts: Dict[str, int] = field(default_factory=dict)
    #: ids that were mid-lease when the journal ended (crashed while
    #: running); the server re-queues these on startup.
    interrupted: List[str] = field(default_factory=list)
    duplicate_submits: int = 0
    #: Torn lines dropped during replay (each also warns).
    dropped_lines: int = 0


class JobJournal(WalFile):
    """Append-only, fsync'd JSONL record of every job transition.

    ``max_bytes`` bounds the file's growth: once an append pushes past
    it, the live state (one ``submit`` per job plus its latest
    transition) is rewritten to a fresh segment atomically.  Superseded
    churn — expired-lease re-queues, duplicate submits — is what gets
    discarded; results, attempts, and terminal states survive verbatim.
    """

    def __init__(self, path: str, max_bytes: Optional[int] = None):
        self.replayed = self._load(path)
        super().__init__(path, max_bytes=max_bytes)

    # -- replay --------------------------------------------------------

    @classmethod
    def _load(cls, path: str) -> ReplayState:
        state = ReplayState()
        stats: Dict[str, int] = {}
        for event in read_wal(path, label="job journal", stats=stats):
            cls._apply(state, event)
        state.dropped_lines = stats.get("dropped", 0)
        for job in state.jobs.values():
            if job.state == STATE_RUNNING:
                state.interrupted.append(job.id)
        return state

    @staticmethod
    def _apply(state: ReplayState, event: Dict[str, Any]) -> None:
        kind = event.get("ev")
        if kind == "submit":
            payload = event.get("job") or {}
            job_id = payload.get("id")
            if job_id is None:
                return
            if job_id in state.jobs:
                # A client re-submitting across a lost response: the
                # id is content-derived, so this is the same job.
                state.duplicate_submits += 1
                return
            state.jobs[job_id] = Job.from_journal_dict(payload)
            return
        job = state.jobs.get(event.get("id"))
        if job is None:
            return  # terminal/lease event orphaned by a torn submit
        if kind == "lease":
            job.state = STATE_RUNNING
            job.attempts = int(event.get("attempt", job.attempts + 1))
        elif kind == "requeue":
            job.state = STATE_QUEUED
            job.attempts = int(event.get("attempt", job.attempts))
        elif kind == "done":
            job.state = STATE_DONE
            job.result = event.get("result")
            job.error = None
            state.terminal_counts[job.id] = (
                state.terminal_counts.get(job.id, 0) + 1
            )
        elif kind == "fail":
            job.state = STATE_FAILED
            job.error = {
                "type": event.get("error_type", "Error"),
                "message": event.get("error", ""),
                "attempts": event.get("attempts", job.attempts),
            }
            state.terminal_counts[job.id] = (
                state.terminal_counts.get(job.id, 0) + 1
            )

    @classmethod
    def terminal_counts(cls, path: str) -> Dict[str, int]:
        """Terminal events per job id in the journal at ``path``.

        Read-only (no append handle is opened); the chaos campaign
        calls this on a dead server's journal.
        """
        return cls._load(path).terminal_counts

    # -- compaction ----------------------------------------------------

    def live_events(self) -> List[Dict[str, Any]]:
        """One ``submit`` per job plus its latest transition.

        Replaying the compacted segment reconstructs every job with the
        same state, attempts, result, and error — and terminal jobs
        keep exactly one terminal event, so
        :meth:`terminal_counts`-based exactly-once assertions hold
        across compactions.
        """
        state = self._load(self.path)
        events: List[Dict[str, Any]] = []
        for job in sorted(
            state.jobs.values(), key=lambda j: j.submitted_unix
        ):
            events.append({"ev": "submit", "job": job.journal_dict()})
            if job.state == STATE_DONE:
                events.append(
                    {"ev": "done", "id": job.id, "result": job.result}
                )
            elif job.state == STATE_FAILED:
                error = job.error or {}
                events.append(
                    {
                        "ev": "fail",
                        "id": job.id,
                        "error_type": error.get("type", "Error"),
                        "error": error.get("message", ""),
                        "attempts": error.get("attempts", job.attempts),
                    }
                )
            elif job.state == STATE_RUNNING:
                # Replay marks mid-lease jobs interrupted and re-queues
                # them — exactly what the uncompacted journal does.
                events.append(
                    {
                        "ev": "lease",
                        "id": job.id,
                        "attempt": job.attempts,
                        "expires_unix": 0.0,
                    }
                )
            elif job.attempts:
                events.append(
                    {
                        "ev": "requeue",
                        "id": job.id,
                        "attempt": job.attempts,
                        "reason": "compacted",
                        "delay_s": 0.0,
                    }
                )
        return events

    # -- appends -------------------------------------------------------

    def record_submit(self, job: Job) -> None:
        self.append({"ev": "submit", "job": job.journal_dict()})

    def record_lease(
        self, job_id: str, attempt: int, expires_unix: float
    ) -> None:
        self.append(
            {
                "ev": "lease",
                "id": job_id,
                "attempt": attempt,
                "expires_unix": expires_unix,
            }
        )

    def record_requeue(
        self, job_id: str, attempt: int, reason: str, delay_s: float = 0.0
    ) -> None:
        self.append(
            {
                "ev": "requeue",
                "id": job_id,
                "attempt": attempt,
                "reason": reason,
                "delay_s": round(delay_s, 6),
            }
        )

    def record_done(
        self, job_id: str, result: Any, elapsed_s: Optional[float] = None
    ) -> None:
        event: Dict[str, Any] = {"ev": "done", "id": job_id, "result": result}
        if elapsed_s is not None:
            event["elapsed_s"] = round(elapsed_s, 6)
        self.append(event)

    def record_fail(
        self, job_id: str, error_type: str, message: str, attempts: int
    ) -> None:
        self.append(
            {
                "ev": "fail",
                "id": job_id,
                "error_type": error_type,
                "error": message,
                "attempts": attempts,
            }
        )

    def __enter__(self) -> "JobJournal":
        return self
