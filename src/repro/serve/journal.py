"""The write-ahead job journal: the server's only source of truth.

Every job state transition is one JSON line appended to the journal —
``flush`` + ``fsync`` before the server acts on it, exactly the
:class:`repro.harness.checkpoint.SweepCheckpoint` discipline — so the
durable record always *leads* the in-memory state.  A SIGKILL at any
instant leaves a journal whose replay reconstructs the server exactly:

- jobs journaled as submitted but never leased come back ``queued``;
- jobs leased but not terminal were running when the process died —
  replay re-queues them (their lease died with the leaseholder), so no
  work is lost;
- jobs with a terminal event stay terminal, result attached, so no
  work is repeated;
- a crash mid-append tears at most the final line, which replay drops
  with a :class:`RuntimeWarning` (the transition it recorded simply
  re-happens);
- a duplicate ``submit`` for an id already seen (a client retrying a
  lost response across a restart) replays to the one existing job.

Event vocabulary (the ``ev`` field): ``submit``, ``lease``,
``requeue``, ``done``, ``fail``.  The journal is append-only and never
compacted in place; :meth:`JobJournal.terminal_counts` exists so the
chaos campaign can assert every job reached a terminal state exactly
once across any number of crashes.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.jobs import (
    Job,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
)

__all__ = ["JobJournal", "ReplayState"]


@dataclass
class ReplayState:
    """What a journal replay reconstructs."""

    jobs: Dict[str, Job] = field(default_factory=dict)
    #: id → number of terminal (done/fail) events seen.  Exactly-once
    #: means every value here is 1.
    terminal_counts: Dict[str, int] = field(default_factory=dict)
    #: ids that were mid-lease when the journal ended (crashed while
    #: running); the server re-queues these on startup.
    interrupted: List[str] = field(default_factory=list)
    dropped_lines: int = 0
    duplicate_submits: int = 0


class JobJournal:
    """Append-only, fsync'd JSONL record of every job transition."""

    def __init__(self, path: str):
        self.path = path
        self.replayed = self._load()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        # A crash mid-append can leave the file without a trailing
        # newline.  Terminate that torn line before appending, or the
        # first new event would concatenate onto the garbage and be
        # lost with it on the next replay.
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                ends_clean = probe.read(1) == b"\n"
            if not ends_clean:
                with open(path, "ab") as repair:
                    repair.write(b"\n")
                    repair.flush()
                    os.fsync(repair.fileno())
        self._file = open(path, "a", encoding="utf-8")

    # -- replay --------------------------------------------------------

    def _load(self) -> ReplayState:
        state = ReplayState()
        if not os.path.exists(self.path):
            return state
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    state.dropped_lines += 1
                    warnings.warn(
                        f"job journal {self.path}: dropping truncated "
                        f"line {lineno} (crash mid-append?); the "
                        f"transition it recorded will re-happen",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    continue
                self._apply(state, event)
        for job in state.jobs.values():
            if job.state == STATE_RUNNING:
                state.interrupted.append(job.id)
        return state

    @staticmethod
    def _apply(state: ReplayState, event: Dict[str, Any]) -> None:
        kind = event.get("ev")
        if kind == "submit":
            payload = event.get("job") or {}
            job_id = payload.get("id")
            if job_id is None:
                return
            if job_id in state.jobs:
                # A client re-submitting across a lost response: the
                # id is content-derived, so this is the same job.
                state.duplicate_submits += 1
                return
            state.jobs[job_id] = Job.from_journal_dict(payload)
            return
        job = state.jobs.get(event.get("id"))
        if job is None:
            return  # terminal/lease event orphaned by a torn submit
        if kind == "lease":
            job.state = STATE_RUNNING
            job.attempts = int(event.get("attempt", job.attempts + 1))
        elif kind == "requeue":
            job.state = STATE_QUEUED
        elif kind == "done":
            job.state = STATE_DONE
            job.result = event.get("result")
            job.error = None
            state.terminal_counts[job.id] = (
                state.terminal_counts.get(job.id, 0) + 1
            )
        elif kind == "fail":
            job.state = STATE_FAILED
            job.error = {
                "type": event.get("error_type", "Error"),
                "message": event.get("error", ""),
                "attempts": event.get("attempts", job.attempts),
            }
            state.terminal_counts[job.id] = (
                state.terminal_counts.get(job.id, 0) + 1
            )

    @classmethod
    def terminal_counts(cls, path: str) -> Dict[str, int]:
        """Terminal events per job id in the journal at ``path``.

        Read-only (no append handle is opened); the chaos campaign
        calls this on a dead server's journal.
        """
        probe = cls.__new__(cls)
        probe.path = path
        return probe._load().terminal_counts

    # -- appends (each one durable before it returns) ------------------

    def _append(self, event: Dict[str, Any]) -> None:
        self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def record_submit(self, job: Job) -> None:
        self._append({"ev": "submit", "job": job.journal_dict()})

    def record_lease(
        self, job_id: str, attempt: int, expires_unix: float
    ) -> None:
        self._append(
            {
                "ev": "lease",
                "id": job_id,
                "attempt": attempt,
                "expires_unix": expires_unix,
            }
        )

    def record_requeue(
        self, job_id: str, attempt: int, reason: str, delay_s: float = 0.0
    ) -> None:
        self._append(
            {
                "ev": "requeue",
                "id": job_id,
                "attempt": attempt,
                "reason": reason,
                "delay_s": round(delay_s, 6),
            }
        )

    def record_done(
        self, job_id: str, result: Any, elapsed_s: Optional[float] = None
    ) -> None:
        event: Dict[str, Any] = {"ev": "done", "id": job_id, "result": result}
        if elapsed_s is not None:
            event["elapsed_s"] = round(elapsed_s, 6)
        self._append(event)

    def record_fail(
        self, job_id: str, error_type: str, message: str, attempts: int
    ) -> None:
        self._append(
            {
                "ev": "fail",
                "id": job_id,
                "error_type": error_type,
                "error": message,
                "attempts": attempts,
            }
        )

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
