"""Lease-based dispatch: time-bounded ownership of a running job.

The server never hands a job to an executor unconditionally — it grants
a **lease**: ``(job id, attempt, expiry)``.  The executor owns the job
only while the lease is current; the dispatcher's monitor tick treats
an expired lease as a dead or wedged executor and re-queues the job
with decorrelated-jitter backoff (:mod:`repro.parallel.backoff` — the
same policy the supervised pool uses for worker respawns) under the
job's bounded attempt budget.

The attempt number doubles as a fencing token: an executor that was
presumed dead but eventually finishes presents its lease on commit, and
a lease that is no longer current is refused — the late result is
discarded, so a job can never reach a terminal state twice, no matter
how badly an executor overruns.

Everything here is in-memory on purpose.  Leases protect against
*executor* death inside a live server; *server* death is the journal's
problem (a dead server's leases died with it, and replay re-queues
whatever was mid-lease).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.parallel.backoff import Backoff

__all__ = ["Lease", "LeaseTable"]


@dataclass(frozen=True)
class Lease:
    """One grant of a job to one executor, valid until ``expires_at``."""

    job_id: str
    attempt: int
    expires_at: float  # monotonic seconds
    #: Who holds the grant (a dist worker id; None for the in-process
    #: executor).  Informational — fencing is by attempt, not owner.
    owner: Optional[str] = None


class LeaseTable:
    """The dispatcher's view of every live lease.

    Parameters
    ----------
    ttl:
        Lease lifetime in seconds.  Executors of healthy jobs either
        finish or renew within this window; one that does neither is
        treated as dead.
    clock:
        Injectable monotonic clock (tests advance a fake one instead of
        sleeping).
    backoff_seed:
        Seed of the shared re-queue backoff sequence.
    """

    def __init__(
        self,
        ttl: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        backoff_seed: int = 0,
    ):
        self.ttl = ttl
        self.clock = clock
        self._live: Dict[str, Lease] = {}
        #: Per-job backoff state: consecutive expirations of the same
        #: job grow its re-queue delay; unrelated jobs stay
        #: decorrelated via distinct seeds.
        self._backoffs: Dict[str, Backoff] = {}
        self._seed = backoff_seed
        self.granted = 0
        self.expired_total = 0

    def grant(
        self, job_id: str, attempt: int, owner: Optional[str] = None
    ) -> Lease:
        """Lease ``job_id`` to an executor for ``ttl`` seconds."""
        lease = Lease(
            job_id=job_id,
            attempt=attempt,
            expires_at=self.clock() + self.ttl,
            owner=owner,
        )
        self._live[job_id] = lease
        self.granted += 1
        return lease

    def renew(self, lease: Lease) -> Optional[Lease]:
        """Extend a still-current lease; None if it was fenced off."""
        if not self.is_current(lease):
            return None
        renewed = Lease(
            job_id=lease.job_id,
            attempt=lease.attempt,
            expires_at=self.clock() + self.ttl,
            owner=lease.owner,
        )
        self._live[lease.job_id] = renewed
        return renewed

    def current(self, job_id: str) -> Optional[Lease]:
        """The live grant for ``job_id``, if any (fencing lookups)."""
        return self._live.get(job_id)

    def is_current(self, lease: Lease) -> bool:
        """Whether ``lease`` is the live grant for its job (fencing)."""
        live = self._live.get(lease.job_id)
        return live is not None and live.attempt == lease.attempt

    def release(self, lease: Lease) -> bool:
        """Commit-side release; False means the lease was fenced off."""
        if not self.is_current(lease):
            return False
        del self._live[lease.job_id]
        # The job committed: its backoff streak is over.
        self._backoffs.pop(lease.job_id, None)
        return True

    def revoke(self, job_id: str) -> None:
        """Drop a job's lease without a commit (expiry or drain).

        Backoff state survives revocation on purpose: consecutive
        expirations of the same job must keep growing its re-queue
        delay (revoke runs *before* :meth:`requeue_delay` in the
        dispatcher's expiry path).
        """
        self._live.pop(job_id, None)

    def expired(self) -> List[Lease]:
        """Every live lease whose expiry has passed (not yet revoked)."""
        now = self.clock()
        return [l for l in self._live.values() if l.expires_at <= now]

    def requeue_delay(self, job_id: str) -> float:
        """The backoff delay before ``job_id`` may be leased again."""
        backoff = self._backoffs.get(job_id)
        if backoff is None:
            # Stable per-job seed (not ``hash()``, which is salted per
            # process): the delay sequence is reproducible across
            # tests/chaos runs but differs between jobs.
            digest = hashlib.sha256(job_id.encode("utf-8")).digest()
            seed = self._seed + int.from_bytes(digest[:2], "big")
            backoff = self._backoffs[job_id] = Backoff(seed=seed)
        self.expired_total += 1
        return backoff.next()

    @property
    def live_count(self) -> int:
        return len(self._live)

    def live_job_ids(self) -> List[str]:
        return list(self._live)

    def live_leases(self) -> List[Lease]:
        """The current grants (the ops dashboard renders these)."""
        return list(self._live.values())
