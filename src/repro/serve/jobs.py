"""The serve job model: request schema, content-derived ids, states.

A job is one ``POST /jobs`` request — a ``simulate``, ``sweep``, or
``figure`` call expressed as JSON against the same keyword-only schema
:mod:`repro.api` exposes in Python::

    {"kind": "simulate",
     "params": {"config": "augmented", "workload": "bfs"}}

    {"kind": "simulate",
     "params": {"config": {"preset": "naive",
                           "overrides": {"num_cores": 1}},
                "workload": "kmeans", "miss_scale": 1.0}}

    {"kind": "figure", "params": {"name": "fig02",
                                  "workloads": ["bfs", "kmeans"]}}

    {"kind": "sweep", "params": {"configs": {"base": "no_tlb",
                                             "aug": "augmented"},
                                 "workloads": ["bfs"]}}

    {"kind": "figure", "params": {"name": "fig02"},
     "engine": "cycle"}

An optional top-level ``"engine"`` runs every machine the job names on
that simulator core (see :func:`repro.engines.available_engines`); a
config spec that sets ``engine`` in its own ``overrides`` wins.  For
``simulate``/``sweep`` the engine folds into each canonical config (two
spellings of the same machines stay the same job); for ``figure`` it is
recorded in the normalized params, since figure configs live server-side.

Validation happens at admission (:func:`normalize_request`): unknown
presets, workloads, figure ids, or config overrides are a ``400``
before anything is journaled.  The normalized request embeds the
*canonical config JSON* of every machine it names, and the job id is a
SHA-256 prefix of that normalized form — so two requests that mean the
same simulation are the **same job**, no matter how they spelled it.
That is the dedup contract: a million clients submitting fig02 share
one job id, one journal entry, and one run (whose cells additionally
short-circuit through the content-addressed result cache).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import GPUConfig, canonical_config_json
from repro.core.presets import preset_names
from repro.workloads.base import TIMING_MISS_SCALE
from repro.workloads.registry import workload_names

__all__ = [
    "Job",
    "RequestError",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "TERMINAL_STATES",
    "job_id_for",
    "normalize_request",
]

KINDS = ("simulate", "sweep", "figure")

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"

#: States a job never leaves.  The chaos campaign asserts every job
#: reaches exactly one of these exactly once across daemon restarts.
TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED})


class RequestError(ValueError):
    """A malformed or unknown-name job request (an HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


def _build_config(
    spec: Any, where: str, engine: Optional[str] = None
) -> GPUConfig:
    """Build the GPUConfig a JSON config spec names (validating it)."""
    if isinstance(spec, str):
        name, overrides = spec, {}
    elif isinstance(spec, dict):
        extra = set(spec) - {"preset", "overrides"}
        _require(
            not extra,
            f"{where}: unknown config keys {sorted(extra)}; "
            "expected {'preset', 'overrides'}",
        )
        name = spec.get("preset")
        overrides = spec.get("overrides") or {}
        _require(
            isinstance(name, str),
            f"{where}: config 'preset' must be a preset name string",
        )
        _require(
            isinstance(overrides, dict),
            f"{where}: config 'overrides' must be an object",
        )
    else:
        raise RequestError(
            f"{where}: config must be a preset name or "
            "{'preset': ..., 'overrides': {...}}; got "
            f"{type(spec).__name__}"
        )
    for key, value in overrides.items():
        _require(
            isinstance(value, (int, float, str, bool)),
            f"{where}: override {key!r} must be a scalar "
            "(nested config sections are not addressable over JSON)",
        )
    try:
        config = GPUConfig.preset(name, **overrides)
    except ValueError as exc:  # unknown preset name
        raise RequestError(f"{where}: {exc}") from exc
    except TypeError as exc:  # unknown override field
        raise RequestError(
            f"{where}: bad config override for preset {name!r}: {exc}"
        ) from exc
    if engine is not None and "engine" not in overrides:
        config = dataclasses.replace(config, engine=engine)
    return config


def _check_workloads(names: Any, where: str) -> List[str]:
    _require(
        isinstance(names, (list, tuple)) and names,
        f"{where}: 'workloads' must be a non-empty list of names",
    )
    known = set(workload_names())
    bad = [name for name in names if name not in known]
    _require(
        not bad,
        f"{where}: unknown workload(s) {bad}; choose from {sorted(known)}",
    )
    return list(names)


def _check_form(form: Any, where: str) -> Optional[str]:
    _require(
        form in (None, "linear", "blocks"),
        f"{where}: form must be null, 'linear', or 'blocks'",
    )
    return form


def _check_miss_scale(value: Any, where: str) -> float:
    _require(
        isinstance(value, (int, float)) and value > 0,
        f"{where}: miss_scale must be a positive number",
    )
    return float(value)


def normalize_request(body: Any) -> Dict[str, Any]:
    """Validate a job request and return its canonical form.

    The canonical form is what gets hashed into the job id and stored
    in the journal: config specs are replaced by their canonical config
    JSON (so spelling differences — aliases, default overrides —
    collapse), optional fields get their defaults, and key order is
    irrelevant.  Raises :class:`RequestError` on anything invalid.
    """
    _require(isinstance(body, dict), "request body must be a JSON object")
    kind = body.get("kind")
    _require(kind in KINDS, f"'kind' must be one of {list(KINDS)}")
    params = body.get("params")
    _require(isinstance(params, dict), "'params' must be a JSON object")
    extra = set(body) - {"kind", "params", "deadline_s", "engine"}
    _require(not extra, f"unknown request keys {sorted(extra)}")
    engine = body.get("engine")
    if engine is not None:
        from repro.engines import available_engines

        _require(
            isinstance(engine, str) and engine in available_engines(),
            f"'engine' must be one of {sorted(available_engines())}; "
            f"got {engine!r}",
        )
    deadline = body.get("deadline_s")
    if deadline is not None:
        _require(
            isinstance(deadline, (int, float)) and deadline > 0,
            "'deadline_s' must be a positive number",
        )

    where = f"{kind} params"
    normalized: Dict[str, Any]
    if kind == "simulate":
        allowed = {"config", "workload", "form", "miss_scale"}
        extra = set(params) - allowed
        _require(not extra, f"{where}: unknown keys {sorted(extra)}")
        _require("config" in params, f"{where}: 'config' is required")
        workload = params.get("workload")
        known = set(workload_names())
        _require(
            workload in known,
            f"{where}: unknown workload {workload!r}; choose from "
            f"{sorted(known)}",
        )
        config = _build_config(params["config"], where, engine=engine)
        normalized = {
            "config": json.loads(canonical_config_json(config)),
            "workload": workload,
            "form": _check_form(params.get("form"), where),
            "miss_scale": _check_miss_scale(
                params.get("miss_scale", TIMING_MISS_SCALE), where
            ),
        }
    elif kind == "sweep":
        allowed = {"configs", "workloads", "form", "miss_scale", "baseline"}
        extra = set(params) - allowed
        _require(not extra, f"{where}: unknown keys {sorted(extra)}")
        configs = params.get("configs")
        _require(
            isinstance(configs, dict) and configs,
            f"{where}: 'configs' must be a non-empty "
            "{label: config} object",
        )
        baseline = params.get("baseline")
        _require(
            baseline is None or baseline in configs,
            f"{where}: baseline {baseline!r} is not a config label",
        )
        normalized = {
            # Sorted label order: the journal stores events with sorted
            # keys, so replayed params come back sorted — sorting here
            # makes row order identical for a fresh and a replayed job.
            "configs": {
                label: json.loads(
                    canonical_config_json(
                        _build_config(
                            configs[label], f"{where}[{label!r}]", engine=engine
                        )
                    )
                )
                for label in sorted(configs)
            },
            "workloads": (
                _check_workloads(params["workloads"], where)
                if params.get("workloads") is not None
                else None
            ),
            "form": _check_form(params.get("form"), where),
            "miss_scale": _check_miss_scale(
                params.get("miss_scale", TIMING_MISS_SCALE), where
            ),
            "baseline": baseline,
        }
    else:  # figure
        from repro.harness.figures import ALL_FIGURES

        allowed = {"name", "workloads"}
        extra = set(params) - allowed
        _require(not extra, f"{where}: unknown keys {sorted(extra)}")
        name = params.get("name")
        _require(
            name in ALL_FIGURES,
            f"{where}: unknown figure {name!r}; choose from "
            f"{sorted(ALL_FIGURES)}",
        )
        normalized = {
            "name": name,
            "workloads": (
                _check_workloads(params["workloads"], where)
                if params.get("workloads") is not None
                else None
            ),
        }
        if engine is not None:
            normalized["engine"] = engine
    request = {"kind": kind, "params": normalized}
    if deadline is not None:
        request["deadline_s"] = float(deadline)
    return request


def job_id_for(normalized: Dict[str, Any]) -> str:
    """The content-derived job id of a normalized request."""
    payload = json.dumps(normalized, sort_keys=True).encode("utf-8")
    return "j" + hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class Job:
    """One submitted request and everything the server knows about it."""

    id: str
    kind: str
    params: Dict[str, Any]
    state: str = STATE_QUEUED
    attempts: int = 0
    max_attempts: int = 3
    deadline_s: Optional[float] = None
    submitted_unix: float = field(default_factory=time.time)
    #: Monotonic timestamp before which the dispatcher must not lease
    #: this job (lease re-queue backoff).  Never persisted: a restarted
    #: server re-dispatches immediately.
    not_before: float = 0.0
    result: Optional[Any] = None
    error: Optional[Dict[str, Any]] = None

    @classmethod
    def from_request(
        cls, normalized: Dict[str, Any], max_attempts: int = 3
    ) -> "Job":
        """Build a queued job from a :func:`normalize_request` payload."""
        return cls(
            id=job_id_for(normalized),
            kind=normalized["kind"],
            params=normalized["params"],
            max_attempts=max_attempts,
            deadline_s=normalized.get("deadline_s"),
        )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def public_dict(self, include_result: bool = True) -> Dict[str, Any]:
        """The JSON the HTTP API serves for this job."""
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "submitted_unix": self.submitted_unix,
        }
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out

    def journal_dict(self) -> Dict[str, Any]:
        """The submit-event payload (durable fields only)."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "max_attempts": self.max_attempts,
            "submitted_unix": self.submitted_unix,
        }
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        return out

    @classmethod
    def from_journal_dict(cls, data: Dict[str, Any]) -> "Job":
        """Inverse of :meth:`journal_dict` (replay path)."""
        return cls(
            id=data["id"],
            kind=data["kind"],
            params=data["params"],
            max_attempts=int(data.get("max_attempts", 3)),
            deadline_s=data.get("deadline_s"),
            submitted_unix=float(data.get("submitted_unix", 0.0)),
        )

    def copy(self) -> "Job":
        """A detached snapshot (HTTP handlers read outside the lock)."""
        return dataclasses.replace(self)
