"""The six evaluation workloads, calibrated to the paper's Figure 3.

Per-benchmark targets (read off the paper's text and plots):

=============  ======  ==============  =========  =========
benchmark      mem %   TLB miss rate   avg p.div  max p.div
=============  ======  ==============  =========  =========
bfs            ~10 %   high (~60 %)    > 4        32
kmeans         ~20 %   low (~22 %)     ~1.5       8
streamcluster  ~25 %   mid (~30 %)     ~2         16
mummergpu      ~14 %   highest (~70 %) > 8        32
pathfinder     ~8 %    low-mid (~25 %) ~1.8       12
memcached      ~12 %   mid (~40 %)     ~2.5       16
=============  ======  ==============  =========  =========

Miss rates are *designed* properties: each workload's resident set
(``48 × private_pages + hot_pool_pages``, kept near the 128-entry TLB
capacity) is overlaid with a calibrated compulsory (cold) access stream
whose rate equals the Figure 3 miss rate.  See
``repro.workloads.base.Workload._pick_pages`` for why emergent capacity
churn cannot be used at simulatable scale.
``tests/workloads/test_calibration.py`` asserts the bands.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Workload, WorkloadSpec

_SPECS: Dict[str, WorkloadSpec] = {
    "bfs": WorkloadSpec(
        name="bfs",
        description="Graph traversal: irregular neighbours, high page divergence",
        compute_latency=9,
        private_pages=1,
        lines_per_page=16,
        shared_lines_per_page=2,
        cold_pages=2048,
        cold_stride_pages=512,
        hot_pool_pages=64,
        shared_fraction=0.6,
        cold_fraction=0.42,
        page_div_mean=5.5,
        page_div_max=32,
        zipf_alpha=1.05,
        divergent_region_fraction=0.8,
        seed=101,
    ),
    "kmeans": WorkloadSpec(
        name="kmeans",
        description="Data clustering: streaming with strong per-warp reuse",
        compute_latency=4,
        private_pages=1,
        cold_pages=2048,
        lines_per_page=16,
        shared_lines_per_page=4,
        hot_pool_pages=48,
        shared_fraction=0.4,
        cold_fraction=0.13,
        page_div_mean=1.5,
        page_div_max=8,
        zipf_alpha=1.4,
        divergent_region_fraction=0.3,
        seed=102,
    ),
    "streamcluster": WorkloadSpec(
        name="streamcluster",
        description="Data mining: memory heavy, moderate divergence",
        compute_latency=3,
        private_pages=1,
        lines_per_page=16,
        shared_lines_per_page=4,
        cold_pages=2048,
        hot_pool_pages=56,
        shared_fraction=0.5,
        cold_fraction=0.17,
        page_div_mean=2.0,
        page_div_max=16,
        zipf_alpha=1.2,
        divergent_region_fraction=0.4,
        seed=103,
    ),
    "mummergpu": WorkloadSpec(
        name="mummergpu",
        description="DNA sequence alignment: far-flung suffix-tree walks",
        compute_latency=6,
        private_pages=1,
        lines_per_page=16,
        shared_lines_per_page=2,
        cold_pages=2048,
        cold_stride_pages=512,
        hot_pool_pages=64,
        shared_fraction=0.6,
        cold_fraction=0.44,
        page_div_mean=14.0,
        page_div_max=32,
        zipf_alpha=1.02,
        divergent_region_fraction=0.8,
        seed=104,
    ),
    "pathfinder": WorkloadSpec(
        name="pathfinder",
        description="Grid dynamic programming: row-wise regular access",
        compute_latency=11,
        private_pages=1,
        cold_pages=2048,
        lines_per_page=16,
        shared_lines_per_page=4,
        hot_pool_pages=40,
        shared_fraction=0.35,
        cold_fraction=0.15,
        page_div_mean=1.8,
        page_div_max=12,
        zipf_alpha=1.3,
        divergent_region_fraction=0.3,
        seed=105,
    ),
    "memcached": WorkloadSpec(
        name="memcached",
        description="Key-value store stimulated with Zipfian (Wikipedia-like) gets",
        compute_latency=7,
        private_pages=1,
        lines_per_page=16,
        shared_lines_per_page=4,
        cold_pages=2048,
        hot_pool_pages=60,
        shared_fraction=0.7,
        cold_fraction=0.24,
        page_div_mean=2.5,
        page_div_max=16,
        zipf_alpha=1.1,
        divergent_region_fraction=0.5,
        seed=106,
    ),
}


def workload_names() -> List[str]:
    """The six benchmark names, in the paper's plotting order."""
    return ["bfs", "kmeans", "streamcluster", "mummergpu", "pathfinder", "memcached"]


def get_workload(name: str) -> Workload:
    """Build the named workload; raises KeyError for unknown names."""
    spec = _SPECS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        )
    return Workload(spec)


def get_spec(name: str) -> WorkloadSpec:
    """The calibration spec of a named workload."""
    workload = get_workload(name)
    return workload.spec
