"""Workload specification and the synthetic trace generators.

A :class:`WorkloadSpec` captures the trace statistics a benchmark must
exhibit; :class:`Workload` turns a spec into concrete per-core work in
two forms:

- **linear** — one full instruction trace per warp slot (used by every
  non-TBC experiment);
- **blocks** — thread blocks of branch-divergence regions (used by the
  TBC experiments, where warps re-form at region boundaries).

Address-stream structure
------------------------
Each warp owns a small *static* private working set it re-references
randomly (per-warp locality), and all warps of a core share a Zipf-hot
pool (graph neighbourhoods, cluster centroids, memcached hot keys) plus
an optional cold tail (compulsory-miss traffic).  The total *active*
page set per core — ``48 × private_pages + hot_pool_pages`` — is the
designed quantity: placed between 128 and 512 pages it makes a
128-entry TLB thrash at the paper's Figure 3 rates while the paper's
"ideal" 512-entry TLB still fits, which is exactly the regime every
evaluation figure depends on.

Every memory instruction draws a *page divergence* (distinct pages its
32 lanes touch, Figure 3 right) from a clipped geometric distribution;
the first page is private, the rest come from the shared pool with
probability ``shared_fraction`` (far-flung lanes) or from the private
set otherwise.  Lanes split into contiguous groups per page and touch
``lines_per_page`` fixed cache lines within it, giving the intra-warp
L1 reuse CCWS recovers.

In block form, page sets belong to *warp pairs* (warps 2j and 2j+1
share), so some cross-warp compactions are harmless while most are not —
the structure the Common Page Matrix learns (Section 8.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import GPUConfig
from repro.gpu.instruction import (
    ComputeInstruction,
    MemoryInstruction,
    WarpTrace,
)
from repro.gpu.tbc.blocks import Region, ThreadBlock
from repro.vm.address import PAGE_SIZE_4K

#: Cold-stream scale used by the *timing* experiments.  The spec's
#: ``cold_fraction`` is calibrated to the paper's Figure 3 miss rates,
#: which characterize >1 GB footprints over billions of instructions.
#: Replaying misses at that absolute rate into an explicit serial page
#: table walker oversubscribes it roughly tenfold at GPGPU-Sim-like
#: memory-instruction densities — the paper's own performance results
#: (5-15 % overheads with one walker per core) imply its timed runs
#: operated well below those characterization rates.  Timing-mode
#: streams therefore scale the cold stream down by this factor; the
#: workload characterization benches (Figures 3 and 4's rate axis) use
#: the unscaled stream.  See EXPERIMENTS.md for the full analysis.
TIMING_MISS_SCALE = 1.0 / 6.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Target trace statistics for one benchmark.

    Attributes
    ----------
    name / description:
        Identification.
    instructions_per_warp:
        Warp instructions per warp trace (linear form).
    compute_latency:
        Scalar instructions folded into each compute template; sets the
        memory-instruction fraction at ``1 / (compute_latency + 1)``.
    private_pages:
        Static per-warp working set, in 4 KB pages.
    lines_per_page:
        Distinct cache lines a warp touches per *private* page — the
        intra-warp L1 working set CCWS recovers.
    shared_lines_per_page:
        Distinct lines touched per shared/cold page (gathers touch few
        lines of many far-flung pages).
    hot_pool_pages / shared_fraction:
        Per-core shared hot pool size and the probability a divergent
        lane group reads from it.
    cold_fraction / cold_pages:
        Probability a page pick instead goes to a near-compulsory-miss
        cold region, and that region's size.
    cold_stride_pages:
        Spacing between cold pages.  1 packs them densely; 512 puts
        every cold page in its own 2 MB region, modelling the far-flung
        footprints that keep bfs/mummergpu divergent even under large
        pages (Section 9).
    page_div_mean / page_div_max:
        Page divergence distribution targets (Figure 3 right).
    zipf_alpha:
        Skew of hot-pool page popularity.
    block_warps / regions_per_block / divergent_region_fraction:
        Block form: warps per thread block, regions per block, and the
        fraction of regions with a two-path divergent branch.
    region_mems:
        Memory instructions per region path (block form).
    seed:
        Base RNG seed; core index and form are folded in.
    """

    name: str
    description: str = ""
    instructions_per_warp: int = 80
    compute_latency: int = 6
    private_pages: int = 4
    lines_per_page: int = 4
    shared_lines_per_page: int = 4
    hot_pool_pages: int = 128
    shared_fraction: float = 0.5
    cold_fraction: float = 0.0
    cold_pages: int = 65536
    cold_stride_pages: int = 1
    page_div_mean: float = 2.0
    page_div_max: int = 16
    zipf_alpha: float = 1.2
    block_warps: int = 8
    regions_per_block: int = 6
    divergent_region_fraction: float = 0.6
    region_mems: int = 4
    seed: int = 1234

    def active_pages(self, warps_per_core: int = 48) -> int:
        """The designed per-core active page set (excludes cold tail)."""
        return warps_per_core * self.private_pages + self.hot_pool_pages


class Workload:
    """A runnable synthetic workload built from a spec."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.spec.name

    # ------------------------------------------------------------------
    # Shared address machinery
    # ------------------------------------------------------------------

    def _warp_pages(self, core: int, warp: int, num_warps: int) -> List[int]:
        """The private page set of a warp (disjoint across warps/cores).

        Each warp's pages are contiguous (a realistic data-structure
        slice) inside a disjoint 128-page slot, with a hashed sub-slot
        offset: aligned slots would make ``vpn % sets`` identical for
        every warp, aliasing all working sets into the same few
        TLB/cache sets.
        """
        index = core * num_warps + warp + 1
        jitter = ((index * 2654435761) >> 7) % 96
        base = index * 128 + jitter
        return [base + i for i in range(self.spec.private_pages)]

    def _pair_pages(self, core: int, warp: int, num_warps: int) -> List[int]:
        """Block form: warps 2j and 2j+1 share one page set."""
        return self._warp_pages(core, warp - (warp % 2), num_warps)

    def _hot_pool(self, core: int) -> List[int]:
        # Above the private slots (which stay below 2^24 pages), so the
        # pool never collides with any warp's pages.
        base = (1 << 30) + core * (1 << 26)
        return [base + i for i in range(self.spec.hot_pool_pages)]

    def _cold_base(self, core: int) -> int:
        return (1 << 31) + core * (1 << 26)

    def _zipf_index(self, rng: random.Random, n: int) -> int:
        """Approximate Zipf(alpha) sample over 0..n-1 via inversion.

        For alpha > 1 the rank follows the standard inverse-power
        transform rank ~ (1-u)^(-1/(alpha-1)); alpha <= 1 degenerates to
        uniform.
        """
        alpha = self.spec.zipf_alpha
        u = rng.random()
        if alpha <= 1.0:
            return min(int(u * n), n - 1)
        rank = int((1.0 - u) ** (-1.0 / (alpha - 1.0))) - 1
        return min(max(rank, 0), n - 1)

    def _sample_divergence(self, rng: random.Random, width: int) -> int:
        """Draw a page divergence with the spec's mean and max."""
        spec = self.spec
        cap = min(spec.page_div_max, width)
        if spec.page_div_mean <= 1.0:
            return 1
        # Geometric-like: P(d) decays so that the mean lands near target.
        p = 1.0 / spec.page_div_mean
        d = 1
        while d < cap and rng.random() > p:
            d += 1
        # Occasional full-divergence spike so the max matches the paper.
        if rng.random() < 0.01:
            d = cap
        return d

    def _pick_pages(
        self,
        rng: random.Random,
        divergence: int,
        private: List[int],
        hot_pool: List[int],
        cold_base: int,
        cold_fraction: float,
    ) -> List[Tuple[int, bool]]:
        """The pages one memory instruction touches, as (page, is_private).

        Every pick rolls independently for the cold region, so the
        workload's TLB miss rate is a *designed*, order-independent
        property (≈ ``cold_fraction``): the resident working set
        (private + hot pool) fits a 128-entry TLB while the cold stream
        misses any capacity.  Pure capacity churn at the paper's
        22-70 % rates is feedback-unstable at simulatable scale —
        eviction rate then tracks walk completion rate, so a *slower*
        walker spuriously improves hit rates; the calibrated cold
        stream keeps miss rates faithful to Figure 3 without that
        artifact.
        """
        spec = self.spec
        chosen: List[Tuple[int, bool]] = []
        for slot in range(divergence):
            if rng.random() < cold_fraction:
                offset = rng.randrange(spec.cold_pages) * spec.cold_stride_pages
                chosen.append((cold_base + offset, False))
                continue
            if slot == 0:
                chosen.append((private[rng.randrange(len(private))], True))
            elif rng.random() < spec.shared_fraction and hot_pool:
                chosen.append(
                    (hot_pool[self._zipf_index(rng, len(hot_pool))], False)
                )
            else:
                chosen.append((private[rng.randrange(len(private))], True))
        return chosen

    def _lane_addresses(
        self, chosen: List[Tuple[int, bool]], width: int
    ) -> Tuple[Optional[int], ...]:
        """Spread lanes over the chosen pages, fixed lines per page."""
        spec = self.spec
        addresses: List[Optional[int]] = []
        group = max(1, width // len(chosen))
        for lane in range(width):
            page, is_private = chosen[min(lane // group, len(chosen) - 1)]
            lines = spec.lines_per_page if is_private else spec.shared_lines_per_page
            line_stride = PAGE_SIZE_4K // max(1, lines)
            # Fixed per-(page, lane) lines, rotated by page number so L1
            # and L2 sets are used uniformly.
            line = (
                (lane % lines) * line_stride + (page % 32) * 128
            ) % PAGE_SIZE_4K
            addresses.append(page * PAGE_SIZE_4K + line)
        return tuple(addresses)

    # ------------------------------------------------------------------
    # Linear form
    # ------------------------------------------------------------------

    def build_linear(
        self, config: GPUConfig, miss_scale: float = 1.0
    ) -> List[List[WarpTrace]]:
        """Per-core lists of warp traces (one trace per warp slot).

        ``miss_scale`` scales the calibrated cold-stream rate; timing
        experiments pass :data:`TIMING_MISS_SCALE`.
        """
        spec = self.spec
        cold_fraction = spec.cold_fraction * miss_scale
        per_core: List[List[WarpTrace]] = []
        for core in range(config.num_cores):
            rng = random.Random(f"{spec.seed}-linear-{core}")
            hot_pool = self._hot_pool(core)
            cold_base = self._cold_base(core)
            traces: List[WarpTrace] = []
            for warp in range(config.warps_per_core):
                private = self._warp_pages(core, warp, config.warps_per_core)
                instructions = []
                count = spec.instructions_per_warp
                # Distinct base cadences keep warps drifting apart over
                # the whole run instead of re-synchronizing.
                base_latency = max(1, spec.compute_latency + (warp % 3) - 1)
                while len(instructions) < count:
                    # ~25% latency jitter keeps warps from staying phase
                    # locked (real compute phases are not identical);
                    # lockstep warps otherwise convoy at the L2 banks.
                    if base_latency > 1:
                        spread = max(1, base_latency // 4)
                        jitter = rng.randint(-spread, spread)
                    else:
                        jitter = 0
                    instructions.append(
                        ComputeInstruction(latency=max(1, base_latency + jitter))
                    )
                    if len(instructions) >= count:
                        break
                    divergence = self._sample_divergence(rng, config.warp_width)
                    chosen = self._pick_pages(
                        rng, divergence, private, hot_pool, cold_base,
                        cold_fraction,
                    )
                    instructions.append(
                        MemoryInstruction(
                            addresses=self._lane_addresses(
                                chosen, config.warp_width
                            )
                        )
                    )
                traces.append(WarpTrace(warp_id=warp, instructions=instructions))
            per_core.append(traces)
        return per_core

    # ------------------------------------------------------------------
    # Block form (TBC)
    # ------------------------------------------------------------------

    def _region(
        self,
        rng: random.Random,
        block_threads: int,
        warp_width: int,
        core: int,
        block_warp_base: int,
        total_core_warps: int,
        hot_pool: List[int],
        region_index: int,
        divergent: bool,
        cold_base: int,
        cold_fraction: float,
    ) -> Region:
        spec = self.spec
        # Two compute templates per memory access keep divergent regions
        # partly issue-bound — the regime where compaction's SIMD
        # utilization gains (fewer warp fetches) pay off.
        program: Tuple = tuple(
            template
            for _ in range(spec.region_mems)
            for template in (
                ("c", spec.compute_latency),
                ("c", spec.compute_latency),
                ("m",),
            )
        )
        if divergent:
            path_programs = {0: program, 1: program}
            thread_paths = tuple(
                rng.randint(0, 1) for _ in range(block_threads)
            )
        else:
            path_programs = {0: program}
            thread_paths = tuple(0 for _ in range(block_threads))
        num_pairs = (block_threads // warp_width + 1) // 2
        # Page picks are coherent per *warp pair* and per access: every
        # thread of a pair reads from the same small page group, spread
        # over lane groups exactly like the linear form.  Static warps
        # therefore show Figure 3-like page divergence, while dynamic
        # warps that mix unrelated pairs see the union of their picks —
        # the divergence amplification of Section 8.1.  Pairs share page
        # sets, so pair-internal compaction is free: the structure the
        # Common Page Matrix learns.
        pair_picks: Dict[int, List[List[Tuple[int, bool]]]] = {}
        for pair in range(num_pairs):
            pages = self._pair_pages(
                core, block_warp_base + pair * 2, total_core_warps
            )
            picks = []
            for _ in range(spec.region_mems):
                divergence = max(
                    1, self._sample_divergence(rng, warp_width) // 2
                )
                picks.append(
                    self._pick_pages(
                        rng, divergence, pages, hot_pool, cold_base,
                        cold_fraction,
                    )
                )
            pair_picks[pair] = picks
        thread_addresses: Dict[int, Tuple[int, ...]] = {}
        for tid in range(block_threads):
            warp_in_block = tid // warp_width
            pair = warp_in_block // 2
            lane = tid % warp_width
            addrs = []
            for m in range(spec.region_mems):
                chosen = pair_picks[pair][m]
                group = max(1, warp_width // len(chosen))
                page, is_private = chosen[min(lane // group, len(chosen) - 1)]
                lines = (
                    spec.lines_per_page
                    if is_private
                    else spec.shared_lines_per_page
                )
                line_stride = PAGE_SIZE_4K // max(1, lines)
                line = (
                    (lane % lines) * line_stride + (page % 32) * 128
                ) % PAGE_SIZE_4K
                addrs.append(page * PAGE_SIZE_4K + line)
            thread_addresses[tid] = tuple(addrs)
        return Region(
            path_programs=path_programs,
            thread_paths=thread_paths,
            thread_addresses=thread_addresses,
        )

    def build_blocks(
        self, config: GPUConfig, miss_scale: float = 1.0
    ) -> List[List[ThreadBlock]]:
        """Per-core lists of thread blocks (TBC experiments)."""
        spec = self.spec
        cold_fraction = spec.cold_fraction * miss_scale
        blocks_per_core = config.warps_per_core // spec.block_warps
        if blocks_per_core == 0:
            raise ValueError(
                f"core has {config.warps_per_core} warp slots; blocks need "
                f"{spec.block_warps}"
            )
        per_core: List[List[ThreadBlock]] = []
        block_threads = spec.block_warps * config.warp_width
        for core in range(config.num_cores):
            rng = random.Random(f"{spec.seed}-blocks-{core}")
            hot_pool = self._hot_pool(core)
            cold_base = self._cold_base(core)
            blocks: List[ThreadBlock] = []
            for b in range(blocks_per_core):
                block_warp_base = b * spec.block_warps
                regions = []
                for r in range(spec.regions_per_block):
                    divergent = rng.random() < spec.divergent_region_fraction
                    regions.append(
                        self._region(
                            rng,
                            block_threads,
                            config.warp_width,
                            core,
                            block_warp_base,
                            config.warps_per_core,
                            hot_pool,
                            r,
                            divergent,
                            cold_base,
                            cold_fraction,
                        )
                    )
                blocks.append(
                    ThreadBlock(
                        block_id=core * blocks_per_core + b,
                        num_warps=spec.block_warps,
                        warp_width=config.warp_width,
                        regions=regions,
                    )
                )
            per_core.append(blocks)
        return per_core

    def build(
        self,
        config: GPUConfig,
        form: Optional[str] = None,
        miss_scale: float = 1.0,
    ):
        """Build per-core work; form defaults to what the config implies.

        Builds are memoized process-wide: generation is pure in the spec
        and the geometry fields consumed here (seeded RNGs, no global
        state), and the returned traces/blocks are immutable once built
        — the simulator wraps them in per-run Warp state and never
        writes through them.  Sweeps over non-geometry knobs (TLB sizes,
        scheduler policies, ...) therefore rebuild nothing.
        """
        if form is None:
            form = "blocks" if config.tbc.mode != "stack" else "linear"
        if form not in ("linear", "blocks"):
            raise ValueError(f"unknown workload form {form!r}")
        key = (
            self.spec,
            form,
            miss_scale,
            config.num_cores,
            config.warps_per_core,
            config.warp_width,
        )
        cached = _BUILD_CACHE.get(key)
        if cached is not None:
            return cached
        if form == "linear":
            built = self.build_linear(config, miss_scale=miss_scale)
        else:
            built = self.build_blocks(config, miss_scale=miss_scale)
        _BUILD_CACHE[key] = built
        return built


#: Memoized Workload.build results keyed by (spec, form, miss_scale,
#: geometry).  Per process; sweep workers each warm their own.
_BUILD_CACHE: Dict[tuple, object] = {}
