"""Calibrated synthetic workloads.

The paper evaluates Rodinia kernels (bfs, kmeans, streamcluster,
mummergpu, pathfinder) plus memcached driven by Wikipedia traces, all
with >1 GB footprints, on GPGPU-Sim.  Neither the binaries nor the
traces can be run here, so each workload is a synthetic trace generator
*calibrated to the per-benchmark measurements the paper itself reports*
(Figure 3): memory-instruction fraction, 128-entry-TLB miss rate, and
average / maximum page divergence — plus the intra-warp locality
structure CCWS exploits and the branch-divergence structure TBC
exploits.  Those statistics are exactly the quantities the paper uses to
explain every result, so matching them preserves the shape of every
figure.
"""

from repro.workloads.base import TIMING_MISS_SCALE, Workload, WorkloadSpec
from repro.workloads.registry import get_workload, workload_names

__all__ = [
    "TIMING_MISS_SCALE",
    "Workload",
    "WorkloadSpec",
    "get_workload",
    "workload_names",
]
