"""Performance observability: phase profiling, metrics, bench tracking.

Where :mod:`repro.obs` traces *simulated* events (cycles, TLB misses,
walk spans), this subsystem watches the *host*: where wall-clock time
goes while the simulator runs, and how that cost moves across commits.

Three pieces:

- :mod:`repro.prof.profiler` — the nestable phase profiler behind the
  same zero-overhead module-flag fast path as ``repro.obs.tracer``;
  instrumentation sites live in the TLB, the walkers, the cache
  hierarchy, DRAM, the coalescer, and the warp scheduler.
- :mod:`repro.prof.registry` — the unified
  :class:`~repro.prof.registry.MetricsRegistry`
  (counters/gauges/histograms with labels) that consolidates the
  ad-hoc tallies of ``repro.obs``, ``repro.faults`` and
  ``repro.parallel.progress``; exporters in :mod:`repro.prof.export`
  (Prometheus text, JSON).
- :mod:`repro.prof.benchfile` — the schema-versioned ``BENCH_<n>.json``
  perf-trajectory files written by ``python -m repro.harness bench``
  and their threshold-based regression comparison.

Quick use::

    from repro import prof
    from repro.api import simulate

    with prof.profile() as profiler:
        simulate(config="augmented", workload="bfs")
    print(profiler.to_dict()["phases"])
"""

from repro.prof.profiler import (
    PHASES,
    PhaseProfiler,
    PhaseRecord,
    active,
    install,
    phase,
    profile,
    profiled,
    uninstall,
)
from repro.prof.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_result,
)
from repro.prof.export import (
    parse_prometheus,
    registry_to_dict,
    to_prometheus,
)

__all__ = [
    "PHASES",
    "PhaseProfiler",
    "PhaseRecord",
    "active",
    "install",
    "phase",
    "profile",
    "profiled",
    "uninstall",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "record_result",
    "parse_prometheus",
    "registry_to_dict",
    "to_prometheus",
]
