"""The unified metrics registry: counters, gauges, histograms.

One registry replaces the ad-hoc tallies previously scattered across
the subsystems: :class:`repro.parallel.progress.SweepProgress` publishes
its sweep counters here, :func:`record_result` mirrors a finished
simulation's :class:`repro.stats.counters.CoreStats` (including the
``repro.faults`` fault counters) into it, and the bench harness
snapshots it into every ``BENCH_<n>.json``.

Metrics are named families with optional labels::

    from repro.prof.registry import REGISTRY

    REGISTRY.counter("sweep_cells_total").inc(source="simulated")
    REGISTRY.gauge("sweep_in_flight").set(3)
    REGISTRY.histogram("cell_seconds", buckets=(0.1, 1, 10)).observe(0.4)

Export with :func:`repro.prof.export.to_prometheus` (Prometheus text
exposition format) or :func:`repro.prof.export.registry_to_dict`
(the JSON layout embedded in BENCH files).
"""

from __future__ import annotations

import bisect
import re
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: one named family of labeled time series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help


class Counter(Metric):
    """A monotonically increasing tally."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        """All labeled series, keyed by sorted label tuples."""
        return dict(self._values)


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled series to ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labeled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        """All labeled series, keyed by sorted label tuples."""
        return dict(self._values)


#: Default histogram buckets: wall-clock seconds from ms to minutes.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    always exists, so ``observe`` never drops a sample.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate histogram buckets for {name}")
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one sample into the labeled series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
        index = bisect.bisect_left(self.buckets, value)
        series.bucket_counts[index] += 1
        series.sum += value
        series.count += 1

    def snapshot(self, **labels: str) -> Dict[str, object]:
        """Cumulative counts per bound, plus sum and count."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets) + 1)
        cumulative: List[int] = []
        running = 0
        for count in series.bucket_counts:
            running += count
            cumulative.append(running)
        return {
            "buckets": [
                {"le": bound, "count": cumulative[i]}
                for i, bound in enumerate(self.buckets)
            ]
            + [{"le": "+Inf", "count": cumulative[-1]}],
            "sum": series.sum,
            "count": series.count,
        }

    def series_keys(self) -> List[LabelKey]:
        """Label keys with recorded samples."""
        return list(self._series)


class MetricsRegistry:
    """Owns every metric family; get-or-create accessors per kind."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind.kind}"
                )
            return existing
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter family ``name``."""
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge family ``name``."""
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        return self._get(name, Histogram, help=help, buckets=buckets)

    def metrics(self) -> List[Metric]:
        """Every registered family, in name order."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[Metric]:
        """The named family, or None."""
        return self._metrics.get(name)

    def clear(self) -> None:
        """Drop every family (tests and per-bench isolation)."""
        self._metrics.clear()


#: The process-wide default registry.  SweepProgress and the bench
#: harness publish here unless handed an explicit registry.
REGISTRY = MetricsRegistry()


def record_result(
    result,
    registry: Optional[MetricsRegistry] = None,
    **labels: str,
) -> None:
    """Mirror a :class:`SimulationResult`'s counters into ``registry``.

    Every integer field of the result's :class:`CoreStats` (TLB, PTW,
    TBC, and the ``repro.faults`` fault counters) becomes a
    ``sim_<field>`` counter; top-level memory-system counters become
    ``sim_<field>`` as well.  ``labels`` (e.g. ``workload="bfs"``)
    apply to every series, which is how sweep cells stay separable.
    """
    if registry is None:
        registry = REGISTRY
    stats = result.stats
    for name, value in vars(stats).items():
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        registry.counter(
            f"sim_{name}", help=f"CoreStats.{name} summed over runs"
        ).inc(value, **labels)
    for name in ("l1_hits", "l1_misses", "l2_hits", "l2_misses",
                 "ptw_refs", "dram_requests"):
        registry.counter(
            f"sim_{name}", help=f"SimulationResult.{name} summed over runs"
        ).inc(getattr(result, name), **labels)
