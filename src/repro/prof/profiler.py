"""The wall-clock phase profiler: module-level fast path + stack frames.

Hot-path contract (the :mod:`repro.obs.tracer` pattern)
-------------------------------------------------------
Instrumented components guard every probe with the module flag::

    from repro.prof import profiler as _prof
    ...
    if _prof.ENABLED:
        _prof.begin(_prof.PHASE_TLB)
    ... the work ...
    if _prof.ENABLED:
        _prof.end()

With no profiler installed ``ENABLED`` is False, so the disabled cost is
one module-attribute load and one branch per site — no objects, no
clock reads.  Profiling reads the monotonic clock and mutates only its
own frame stack, never simulated state, so simulation results are
byte-identical with profiling on or off
(``tests/obs/test_overhead.py`` asserts this against golden files).

Attribution
-----------
Phases nest: a page walk started under a TLB miss runs with the
``ptw_walk`` frame on top of ``tlb_lookup``.  Each completed frame adds
its *inclusive* duration to the phase's ``total_ns`` and its *exclusive*
duration (inclusive minus time spent in child frames) to ``self_ns``, so
the self-times of all phases partition the profiled wall time with no
double counting.  ``total_ns`` does double-count when the same phase
re-enters itself recursively; the built-in phases never self-nest.

Exceptions
----------
A simulator error raised between ``begin`` and ``end`` leaves frames on
the stack.  :meth:`PhaseProfiler.end_through` (called from the
simulator's ``finally``) unwinds to the enclosing run marker, so a
failed cell cannot skew the attribution of later cells.
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Callable, Dict, List, Optional

from repro.obs.switch import ModuleSwitch

#: Phase names used by the built-in instrumentation sites.
PHASE_SIMULATE = "simulate"          # one whole Simulator.run()
PHASE_TLB = "tlb_lookup"             # SetAssociativeTLB.lookup
PHASE_PTW = "ptw_walk"               # serial walker / pool walks
PHASE_PTW_SCHED = "ptw_schedule"     # the coalescing scheduled walker
PHASE_CACHE = "cache_l1"             # CoreMemory.access (L1 + MSHRs)
PHASE_L2 = "cache_l2"                # SharedMemory.access_line
PHASE_DRAM = "dram"                  # DRAM.access
PHASE_COALESCE = "coalescer"         # intra-warp address coalescing
PHASE_WARP_SCHED = "warp_scheduler"  # scheduler.select
PHASE_EVENT_SKIP = "event_skip"      # event engine dead-time skip bookkeeping

#: Every phase the built-in instrumentation emits.
PHASES = (
    PHASE_SIMULATE,
    PHASE_TLB,
    PHASE_PTW,
    PHASE_PTW_SCHED,
    PHASE_CACHE,
    PHASE_L2,
    PHASE_DRAM,
    PHASE_COALESCE,
    PHASE_WARP_SCHED,
    PHASE_EVENT_SKIP,
)

#: Fast-path flag: True exactly while a profiler is installed.
ENABLED = False

_ACTIVE: Optional["PhaseProfiler"] = None

_SWITCH = ModuleSwitch(__name__)


class PhaseRecord:
    """Accumulated cost of one phase."""

    __slots__ = ("calls", "self_ns", "total_ns")

    def __init__(self):
        self.calls = 0
        self.self_ns = 0
        self.total_ns = 0

    def to_dict(self) -> Dict[str, float]:
        """JSON form (seconds as floats, the BENCH file unit)."""
        return {
            "calls": self.calls,
            "self_s": self.self_ns / 1e9,
            "total_s": self.total_ns / 1e9,
        }


class PhaseProfiler:
    """Attributes host wall time to nested simulator phases.

    Parameters
    ----------
    clock:
        Nanosecond monotonic clock (injectable for deterministic tests).
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        # Stack frames: [phase, start_ns, child_ns].
        self._stack: List[List] = []
        self.records: Dict[str, PhaseRecord] = {}
        #: Free-form tallies (simulated cycles, cells run, ...).
        self.counts: Dict[str, int] = {}

    # -- frame stack ---------------------------------------------------

    def begin(self, phase: str) -> None:
        """Open a frame for ``phase``; pauses the parent's self-time."""
        self._stack.append([phase, self._clock(), 0])

    def end(self) -> None:
        """Close the innermost frame, attributing its time."""
        frame = self._stack.pop()
        now = self._clock()
        total = now - frame[1]
        record = self.records.get(frame[0])
        if record is None:
            record = self.records[frame[0]] = PhaseRecord()
        record.calls += 1
        record.total_ns += total
        record.self_ns += total - frame[2]
        if self._stack:
            self._stack[-1][2] += total
        return None

    def end_through(self, phase: str) -> None:
        """Unwind frames until one named ``phase`` has been closed.

        Error-path companion to :meth:`begin`: closes abandoned child
        frames (an exception mid-walk leaves them open) and then the
        marker frame itself.  No-op on an empty stack.
        """
        while self._stack:
            name = self._stack[-1][0]
            self.end()
            if name == phase:
                return

    @property
    def depth(self) -> int:
        """Open frames (0 when the stack is balanced)."""
        return len(self._stack)

    # -- tallies -------------------------------------------------------

    def add(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the free-form tally ``name``."""
        self.counts[name] = self.counts.get(name, 0) + value

    # -- results -------------------------------------------------------

    def total_profiled_ns(self) -> int:
        """Self-time sum over all phases (partitions profiled wall time)."""
        return sum(record.self_ns for record in self.records.values())

    def to_dict(self) -> Dict[str, Dict]:
        """JSON-safe snapshot: ``{"phases": ..., "counts": ...}``."""
        return {
            "phases": {
                name: self.records[name].to_dict()
                for name in sorted(self.records)
            },
            "counts": dict(sorted(self.counts.items())),
        }


def install(profiler: PhaseProfiler) -> None:
    """Make ``profiler`` active and raise the fast-path flag."""
    _SWITCH.install(profiler)


def uninstall() -> None:
    """Deactivate profiling; the fast path returns to a single branch."""
    _SWITCH.uninstall()


def active() -> Optional[PhaseProfiler]:
    """The installed profiler, or None."""
    return _ACTIVE


# -- module-level forwarding (what instrumentation sites call) ---------


def begin(phase: str) -> None:
    """Open a frame on the active profiler (no-op when none is)."""
    profiler = _ACTIVE
    if profiler is not None:
        profiler.begin(phase)


def end() -> None:
    """Close the innermost frame on the active profiler."""
    profiler = _ACTIVE
    if profiler is not None:
        profiler.end()


def end_through(phase: str) -> None:
    """Unwind the active profiler's stack through ``phase``."""
    profiler = _ACTIVE
    if profiler is not None:
        profiler.end_through(phase)


def add(name: str, value: int = 1) -> None:
    """Add to a tally on the active profiler."""
    profiler = _ACTIVE
    if profiler is not None:
        profiler.add(name, value)


# -- user-facing sugar -------------------------------------------------


@contextlib.contextmanager
def profile(profiler: Optional[PhaseProfiler] = None):
    """Install a profiler for the ``with`` body and yield it::

        with repro.prof.profile() as prof:
            simulate(config="augmented", workload="bfs")
        print(prof.to_dict())

    Restores the previously installed profiler (if any) on exit, so
    profiled sections nest safely.
    """
    if profiler is None:
        profiler = PhaseProfiler()
    previous = _ACTIVE
    install(profiler)
    try:
        yield profiler
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)


@contextlib.contextmanager
def phase(name: str):
    """Context manager attributing the ``with`` body to ``name``.

    For user code and coarse phases; the simulator's hot paths use the
    ``if ENABLED: begin/end`` pattern instead (no context-manager
    overhead when profiling is off).
    """
    if not ENABLED:
        yield
        return
    begin(name)
    try:
        yield
    finally:
        end()


def profiled(name: str):
    """Decorator form of :func:`phase`::

        @profiled("analysis")
        def summarize(results): ...
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            begin(name)
            try:
                return fn(*args, **kwargs)
            finally:
                end()

        return wrapper

    return decorate
