"""The ``BENCH_<n>.json`` performance-trajectory files.

Every ``python -m repro.harness bench`` run writes one schema-versioned
report at the repo root — ``BENCH_1.json``, ``BENCH_2.json``, ... — so
the sequence forms a tracked perf trajectory: any later hot-path PR
takes its before/after numbers from consecutive files.

Schema (``BENCH_SCHEMA_VERSION`` = 1)::

    {
      "schema_version": 1,
      "kind": "repro-bench",
      "mode": "quick" | "full" | "custom",
      "host": {
        "python": str,      # interpreter version, e.g. "3.11.9"
        "platform": str,    # platform.platform() of the measuring host
        "machine": str,     # optional: platform.machine(), e.g. "x86_64"
        "cpu_count": int
      },
      "git": {              # optional: absent outside a git checkout
        "commit": str,      # HEAD hash the run measured
        "dirty": bool       # uncommitted changes present? (null if
                            # `git status` itself failed)
      },
      "figures": {
        "<figure>": {
          "wall_s": float,        # host wall time for the figure
          "cells": int,           # (config, workload) cells simulated
          "cells_per_s": float,
          "sim_cycles": int,      # simulated cycles across the cells
          "cycles_per_s": float,  # simulated cycles per host second
          "phases": {"<phase>": {"calls", "self_s", "total_s"}, ...},
          "observed_wall_s": float,   # optional (bench --observed):
          "observed_overhead": float  # traced+spanned re-run and its
                                      # ratio to the untraced wall time
        }, ...
      },
      "totals": {"wall_s", "cells", "cells_per_s", "sim_cycles",
                 "cycles_per_s", "peak_rss_kb",
                 "observed_wall_s"?, "observed_overhead"?},
      "metrics": { ... repro.prof.export.registry_to_dict ... }
    }

``host.machine`` and the ``git`` section postdate ``BENCH_1.json``;
both are optional so earlier reports keep validating, but every new
report written inside a checkout records the exact commit its numbers
measured.

Comparison is threshold-based and wall-clock aware: a figure regresses
when its wall time grows (or its cells/s throughput shrinks) by more
than the threshold versus the baseline file.  CI runs the comparison
warn-only (hosted runners are noisy); locally ``--strict`` turns any
regression verdict into a non-zero exit.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Bumped when the report layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Report files are ``BENCH_<n>.json`` at the repo root.
BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: Default regression threshold: a figure's wall time may grow (or its
#: throughput shrink) by up to this fraction before the verdict flips.
#: Wall clocks on shared machines jitter by ~10-20 %; 35 % keeps the
#: verdict meaningful while staying quiet on noise.
DEFAULT_THRESHOLD = 0.35

VERDICT_OK = "ok"
VERDICT_REGRESSION = "regression"
VERDICT_IMPROVED = "improved"
VERDICT_NEW = "new"
VERDICT_REMOVED = "removed"


def bench_paths(root: pathlib.Path) -> List[pathlib.Path]:
    """Every ``BENCH_<n>.json`` under ``root``, ordered by ``n``."""
    found: List[Tuple[int, pathlib.Path]] = []
    for path in root.iterdir():
        match = BENCH_PATTERN.match(path.name)
        if match is not None:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_bench_path(root: pathlib.Path) -> pathlib.Path:
    """The next unused ``BENCH_<n>.json`` path under ``root``."""
    existing = bench_paths(root)
    if not existing:
        return root / "BENCH_1.json"
    last = int(BENCH_PATTERN.match(existing[-1].name).group(1))
    return root / f"BENCH_{last + 1}.json"


def latest_bench_path(root: pathlib.Path) -> Optional[pathlib.Path]:
    """The highest-numbered existing report, or None."""
    existing = bench_paths(root)
    return existing[-1] if existing else None


def validate(report: Dict[str, Any]) -> List[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if report.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {report.get('schema_version')!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    if report.get("kind") != "repro-bench":
        problems.append(f"kind {report.get('kind')!r} != 'repro-bench'")
    figures = report.get("figures")
    if not isinstance(figures, dict) or not figures:
        problems.append("figures section missing or empty")
        figures = {}
    for name, entry in figures.items():
        for key in ("wall_s", "cells", "cells_per_s", "sim_cycles",
                    "cycles_per_s", "phases"):
            if key not in entry:
                problems.append(f"figures[{name!r}] missing {key!r}")
        for phase, record in entry.get("phases", {}).items():
            for key in ("calls", "self_s", "total_s"):
                if key not in record:
                    problems.append(
                        f"figures[{name!r}].phases[{phase!r}] missing {key!r}"
                    )
    totals = report.get("totals")
    if not isinstance(totals, dict):
        problems.append("totals section missing")
    else:
        for key in ("wall_s", "cells", "cells_per_s", "sim_cycles",
                    "cycles_per_s", "peak_rss_kb"):
            if key not in totals:
                problems.append(f"totals missing {key!r}")
    if "metrics" not in report:
        problems.append("metrics section missing")
    return problems


def load(path: pathlib.Path) -> Dict[str, Any]:
    """Read and schema-check one report; raises ``ValueError`` if invalid."""
    report = json.loads(path.read_text())
    problems = validate(report)
    if problems:
        raise ValueError(
            f"{path} is not a valid bench report: {'; '.join(problems)}"
        )
    return report


def save(report: Dict[str, Any], path: pathlib.Path) -> None:
    """Write one report (canonical two-space JSON, trailing newline)."""
    problems = validate(report)
    if problems:
        raise ValueError(f"refusing to write invalid report: {problems}")
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


@dataclass
class FigureVerdict:
    """Comparison outcome for one figure."""

    figure: str
    verdict: str
    wall_ratio: Optional[float] = None
    throughput_ratio: Optional[float] = None
    detail: str = ""


@dataclass
class Comparison:
    """Outcome of comparing a report against a baseline report."""

    baseline_name: str
    threshold: float
    figures: List[FigureVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[FigureVerdict]:
        """Figures whose verdict is a regression."""
        return [f for f in self.figures if f.verdict == VERDICT_REGRESSION]

    @property
    def verdict(self) -> str:
        """Overall verdict: regression wins over improved wins over ok."""
        verdicts = {f.verdict for f in self.figures}
        if VERDICT_REGRESSION in verdicts:
            return VERDICT_REGRESSION
        if VERDICT_IMPROVED in verdicts:
            return VERDICT_IMPROVED
        return VERDICT_OK

    def render(self) -> str:
        """Human-readable verdict table."""
        lines = [
            f"== bench compare vs {self.baseline_name} "
            f"(threshold ±{self.threshold:.0%}) =="
        ]
        width = max((len(f.figure) for f in self.figures), default=6)
        for item in self.figures:
            bits = [f"{item.figure:<{width}s}  {item.verdict:<10s}"]
            if item.wall_ratio is not None:
                bits.append(f"wall x{item.wall_ratio:.2f}")
            if item.throughput_ratio is not None:
                bits.append(f"cells/s x{item.throughput_ratio:.2f}")
            if item.detail:
                bits.append(item.detail)
            lines.append("  ".join(bits))
        lines.append(f"overall: {self.verdict}")
        return "\n".join(lines)


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    baseline_name: str = "baseline",
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Threshold-based per-figure regression verdicts.

    A figure regresses when wall time grows by more than ``threshold``
    *or* cells/s throughput shrinks by more than ``threshold``; it
    improves when wall time shrinks by more than ``threshold`` without
    a throughput regression.  Figures present on only one side are
    ``new`` / ``removed`` (never a regression — matrices evolve).
    """
    result = Comparison(baseline_name=baseline_name, threshold=threshold)
    current_figures = current.get("figures", {})
    baseline_figures = baseline.get("figures", {})
    for name in sorted(set(current_figures) | set(baseline_figures)):
        now = current_figures.get(name)
        before = baseline_figures.get(name)
        if before is None:
            result.figures.append(
                FigureVerdict(figure=name, verdict=VERDICT_NEW)
            )
            continue
        if now is None:
            result.figures.append(
                FigureVerdict(figure=name, verdict=VERDICT_REMOVED)
            )
            continue
        wall_ratio = (
            now["wall_s"] / before["wall_s"] if before["wall_s"] > 0 else None
        )
        thr_ratio = (
            now["cells_per_s"] / before["cells_per_s"]
            if before["cells_per_s"] > 0
            else None
        )
        verdict = VERDICT_OK
        detail = ""
        if wall_ratio is not None and wall_ratio > 1 + threshold:
            verdict = VERDICT_REGRESSION
            detail = (
                f"wall {before['wall_s']:.2f}s -> {now['wall_s']:.2f}s"
            )
        elif thr_ratio is not None and thr_ratio < 1 - threshold:
            verdict = VERDICT_REGRESSION
            detail = (
                f"throughput {before['cells_per_s']:.2f} -> "
                f"{now['cells_per_s']:.2f} cells/s"
            )
        elif wall_ratio is not None and wall_ratio < 1 - threshold:
            verdict = VERDICT_IMPROVED
            detail = (
                f"wall {before['wall_s']:.2f}s -> {now['wall_s']:.2f}s"
            )
        result.figures.append(
            FigureVerdict(
                figure=name,
                verdict=verdict,
                wall_ratio=wall_ratio,
                throughput_ratio=thr_ratio,
                detail=detail,
            )
        )
    return result
