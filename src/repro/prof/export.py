"""Exporters for :class:`repro.prof.registry.MetricsRegistry`.

Two formats:

- :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  histogram ``_bucket``/``_sum``/``_count`` expansions), suitable for a
  node-exporter-style textfile collector or a pushgateway.
- :func:`registry_to_dict` — the JSON layout embedded in the
  ``metrics`` section of every ``BENCH_<n>.json``.

:func:`parse_prometheus` is the inverse of :func:`to_prometheus` for the
sample lines (headers are comments); the round trip is pinned by
``tests/prof/test_export.py``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

from repro.prof.registry import Counter, Gauge, Histogram, MetricsRegistry


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Integral values print without a trailing .0 (canonical, diffable).
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in sorted(metric.series().items()):
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels in sorted(metric.series_keys()):
                snap = metric.snapshot(**dict(labels))
                for bucket in snap["buckets"]:
                    le = bucket["le"]
                    le_text = "+Inf" if le == "+Inf" else _format_value(le)
                    bucket_labels = labels + (("le", le_text),)
                    lines.append(
                        f"{metric.name}_bucket{_format_labels(bucket_labels)} "
                        f"{bucket['count']}"
                    )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(snap['sum'])}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} "
                    f"{snap['count']}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def parse_prometheus(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition-format sample lines back to ``{(name, labels): value}``.

    Comments (``# HELP`` / ``# TYPE``) and blank lines are skipped;
    malformed sample lines raise ``ValueError``.  Histograms come back
    as their expanded ``_bucket``/``_sum``/``_count`` series, exactly as
    a Prometheus scraper would ingest them.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            (m.group("name"), _unescape_label_value(m.group("value")))
            for m in _LABEL_PAIR_RE.finditer(labels_text)
        )
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples[(match.group("name"), labels)] = value
    return samples


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """JSON layout of the registry (the BENCH ``metrics`` section).

    ``{name: {"type": ..., "help": ..., "values": [{"labels": {...},
    ...}]}}`` — counters/gauges carry ``"value"``, histograms carry
    ``"buckets"``/``"sum"``/``"count"`` per labeled series.
    """
    out: Dict[str, Any] = {}
    for metric in registry.metrics():
        entry: Dict[str, Any] = {
            "type": metric.kind,
            "help": metric.help,
            "values": [],
        }
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in sorted(metric.series().items()):
                entry["values"].append(
                    {"labels": dict(labels), "value": value}
                )
        elif isinstance(metric, Histogram):
            for labels in sorted(metric.series_keys()):
                snap = metric.snapshot(**dict(labels))
                entry["values"].append({"labels": dict(labels), **snap})
        out[metric.name] = entry
    return out
